package sim

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// ShardedEngine runs N shard engines as one logical simulation, in the
// conservative parallel discrete-event style (Chandy–Misra–Bryant): a shard
// may execute ahead of its neighbors only as far as the minimum cross-shard
// link latency (the lookahead) guarantees no earlier event can still arrive.
//
// Two drive modes share the same shard topology, routing and cross-shard
// handoff API (Engine.At2On):
//
//   - Lockstep (parallel=false): a single goroutine executes the globally
//     earliest event across all shard heaps, with one shared clock and one
//     shared sequence counter. This is order-identical to a single engine by
//     construction — every schedule call happens in the same program order
//     and receives the same (time, seq) key — so chaos digests are
//     byte-identical at any shard count. It exercises the full sharded
//     routing (per-shard heaps, ownership split, handoff points) without
//     concurrency.
//
//   - Parallel (parallel=true): one goroutine per shard. The coordinator
//     repeatedly finds the global minimum next-event time T, sets the window
//     horizon H = T + lookahead, lets every shard execute its events with
//     timestamp < H concurrently, then at the barrier merges the cross-shard
//     outboxes sorted by (time, srcShard, srcSeq) and injects them into the
//     destination heaps. Runs are deterministic for a fixed shard count;
//     workloads whose randomness is partitioned per shard (no shared RNG
//     stream) additionally reproduce the lockstep order exactly when event
//     timestamps are distinct.
//
// Cross-shard event timestamps must be >= sender time + lookahead; the
// barrier panics on violations rather than corrupt causality.
type ShardedEngine struct {
	shards    []*Engine
	lookahead Time
	parallel  bool

	now  Time   // lockstep shared clock / parallel completed horizon
	gseq uint64 // lockstep shared sequence counter

	// outbox[src] buffers cross-shard events produced by shard src during
	// the current parallel window. Only shard src's goroutine appends during
	// a window; the coordinator drains at the barrier (the WaitGroup
	// provides the happens-before edge).
	outbox [][]xev
	merged []xev // barrier scratch

	work   []chan Time // per-shard window signal; nil until first parallel run
	wg     sync.WaitGroup
	closed bool
}

// xev is one buffered cross-shard event awaiting barrier injection.
type xev struct {
	at  Time
	seq uint64 // sender-local sequence: deterministic order among same-sender events
	src int32
	dst int32
	fn2 func(a, b any)
	a,
	b any
}

// NewShardedEngine builds n shard engines. Shard 0's random source is
// seeded exactly like NewEngine(seed), so code that draws from
// Shard(0).Rand() in construction order sees the same stream as a
// standalone engine; other shards derive their seeds from the root seed.
// lookahead is the minimum cross-shard event latency (see Engine.At2On);
// it must be positive when parallel is true and n > 1.
func NewShardedEngine(seed int64, n int, lookahead Time, parallel bool) *ShardedEngine {
	if n < 1 {
		n = 1
	}
	if parallel && n > 1 && lookahead <= 0 {
		panic("sim: parallel sharding requires a positive cross-shard lookahead")
	}
	s := &ShardedEngine{lookahead: lookahead, parallel: parallel}
	s.shards = make([]*Engine, n)
	s.outbox = make([][]xev, n)
	for i := 0; i < n; i++ {
		sh := NewEngine(shardSeed(seed, i))
		sh.sh = s
		sh.id = int32(i)
		if !parallel {
			sh.nowp = &s.now
			sh.gseq = &s.gseq
		}
		s.shards[i] = sh
	}
	return s
}

// shardSeed derives shard i's RNG seed from the root seed. Shard 0 keeps
// the root seed itself (single-shard compatibility).
func shardSeed(seed int64, i int) int64 {
	if i == 0 {
		return seed
	}
	return seed ^ int64(uint64(i)*0x9e3779b97f4a7c15)
}

// N returns the shard count.
func (s *ShardedEngine) N() int { return len(s.shards) }

// Shard returns shard i's engine.
func (s *ShardedEngine) Shard(i int) *Engine { return s.shards[i] }

// Parallel reports whether the group runs shards on concurrent goroutines
// (true) or in deterministic lockstep on the caller's goroutine (false).
func (s *ShardedEngine) Parallel() bool { return s.parallel }

// Lookahead returns the conservative window width.
func (s *ShardedEngine) Lookahead() Time { return s.lookahead }

// Now returns the completed virtual time of the group.
func (s *ShardedEngine) Now() Time { return s.now }

// ExecutedTotal sums the per-shard executed-event counters.
func (s *ShardedEngine) ExecutedTotal() uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.Executed
	}
	return n
}

// Pending sums the live queued events across shards and outboxes.
func (s *ShardedEngine) Pending() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Pending()
	}
	for _, ob := range s.outbox {
		n += len(ob)
	}
	return n
}

// Drain discards all queued events on every shard and returns the live
// count, mirroring Engine.Drain.
func (s *ShardedEngine) Drain() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Drain()
	}
	for i := range s.outbox {
		n += len(s.outbox[i])
		s.outbox[i] = s.outbox[i][:0]
	}
	return n
}

// RunUntil executes events with timestamps <= deadline on every shard, then
// advances the group clock to the deadline.
func (s *ShardedEngine) RunUntil(deadline Time) {
	if s.parallel && len(s.shards) > 1 {
		s.runParallelUntil(deadline)
		return
	}
	s.runLockstepUntil(deadline)
}

// RunFor advances the group by d nanoseconds of virtual time.
func (s *ShardedEngine) RunFor(d Time) { s.RunUntil(s.now + d) }

// runAllSentinel marks a Run-until-empty drive: the final clamp to the
// deadline is skipped so the group clock is left at the last executed
// event, matching Engine.Run.
const runAllSentinel = Time(math.MaxInt64)

// Run executes events until every shard's queue is empty. The group clock
// is left at the last executed event, like Engine.Run.
func (s *ShardedEngine) Run() { s.RunUntil(runAllSentinel) }

// runLockstepUntil picks the globally earliest (time, seq) head across the
// shard heaps and steps that shard, one event at a time. With the shared
// clock and sequence counter this is exactly the single-heap order.
func (s *ShardedEngine) runLockstepUntil(deadline Time) {
	for {
		best := -1
		var ba Time
		var bs uint64
		for i, sh := range s.shards {
			if len(sh.events) == 0 {
				continue
			}
			h := &sh.events[0]
			if best < 0 || h.at < ba || (h.at == ba && h.seq < bs) {
				best, ba, bs = i, h.at, h.seq
			}
		}
		if best < 0 || ba > deadline {
			break
		}
		s.shards[best].Step()
	}
	if deadline == runAllSentinel {
		return
	}
	if s.now < deadline {
		s.now = deadline
	}
	if s.parallel { // single-shard parallel group: keep shard clock in sync
		for _, sh := range s.shards {
			if sh.now < deadline {
				sh.now = deadline
			}
		}
	}
}

// runParallelUntil drives conservative windows until no shard has an event
// at or before the deadline.
func (s *ShardedEngine) runParallelUntil(deadline Time) {
	if s.work == nil {
		s.startWorkers()
	}
	if s.closed {
		panic("sim: ShardedEngine used after Close")
	}
	for {
		t, ok := s.nextEventTime()
		if !ok || t > deadline {
			break
		}
		horizon := t + s.lookahead
		exec := horizon
		if deadline != runAllSentinel && exec > deadline {
			exec = deadline + 1 // final window: run everything <= deadline
		}
		s.wg.Add(len(s.shards))
		for _, ch := range s.work {
			ch <- exec
		}
		s.wg.Wait()
		s.injectOutboxes(horizon)
	}
	if deadline == runAllSentinel {
		for _, sh := range s.shards {
			if sh.now > s.now {
				s.now = sh.now
			}
		}
		return
	}
	for _, sh := range s.shards {
		if sh.now < deadline {
			sh.now = deadline
		}
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// nextEventTime returns the globally earliest queued timestamp.
func (s *ShardedEngine) nextEventTime() (Time, bool) {
	var t Time
	ok := false
	for _, sh := range s.shards {
		if len(sh.events) == 0 {
			continue
		}
		if !ok || sh.events[0].at < t {
			t, ok = sh.events[0].at, true
		}
	}
	return t, ok
}

// injectOutboxes merges the window's cross-shard events in deterministic
// (time, srcShard, srcSeq) order and pushes them onto the destination
// heaps. horizon is the (unclamped) window bound every shard executed up
// to; an event below it would have to run in a shard's past, which means
// the sender violated the declared lookahead.
func (s *ShardedEngine) injectOutboxes(horizon Time) {
	s.merged = s.merged[:0]
	for i := range s.outbox {
		s.merged = append(s.merged, s.outbox[i]...)
		for j := range s.outbox[i] {
			s.outbox[i][j] = xev{}
		}
		s.outbox[i] = s.outbox[i][:0]
	}
	if len(s.merged) == 0 {
		return
	}
	m := s.merged
	sort.Slice(m, func(i, j int) bool {
		if m[i].at != m[j].at {
			return m[i].at < m[j].at
		}
		if m[i].src != m[j].src {
			return m[i].src < m[j].src
		}
		return m[i].seq < m[j].seq
	})
	for i := range m {
		x := &m[i]
		if x.at < horizon {
			panic(fmt.Sprintf("sim: cross-shard event at %v violates lookahead window %v (shard %d -> %d): declared lookahead exceeds the actual minimum cross-shard latency", x.at, horizon, x.src, x.dst))
		}
		s.shards[x.dst].schedule(x.at, event{fn2: x.fn2, a: x.a, b: x.b})
		x.fn2, x.a, x.b = nil, nil, nil
	}
}

// startWorkers launches one goroutine per shard. Each executes windows on
// demand; channel send and WaitGroup completion provide the memory
// ordering between the coordinator and the shard goroutines.
func (s *ShardedEngine) startWorkers() {
	s.work = make([]chan Time, len(s.shards))
	for i := range s.shards {
		ch := make(chan Time, 1)
		s.work[i] = ch
		go func(sh *Engine, ch chan Time) {
			for h := range ch {
				sh.runWindow(h)
				s.wg.Done()
			}
		}(s.shards[i], ch)
	}
}

// Close stops the shard worker goroutines. The engine must not be run
// afterwards; call it when a parallel simulation is finished. Close is a
// no-op for lockstep groups and safe to call twice.
func (s *ShardedEngine) Close() {
	if s.closed || s.work == nil {
		s.closed = true
		return
	}
	s.closed = true
	for _, ch := range s.work {
		close(ch)
	}
}
