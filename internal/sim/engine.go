// Package sim implements a deterministic discrete-event simulation engine.
//
// All of the network simulation in this repository is driven by a single
// Engine: entities schedule closures at virtual timestamps, and the engine
// executes them in (time, sequence) order. Determinism is guaranteed by the
// FIFO tie-break on equal timestamps and by the seeded random source, so a
// simulation run is exactly reproducible from its seed.
//
// The event queue is a monomorphic 4-ary min-heap over a concrete event
// struct: no container/heap, no interface boxing, no allocation per
// scheduled event once the backing array has grown to the working set. The
// (time, seq) tie-break gives every event a unique total-order key, so the
// pop order — and therefore every simulation trace — is byte-identical to
// the previous binary-heap implementation.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is a virtual timestamp in nanoseconds since the start of the
// simulation. It is the same unit as the 48-bit message timestamps in the
// 1Pipe packet header.
type Time int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats the time with microsecond granularity for logs.
func (t Time) String() string {
	return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
}

// Seconds converts a virtual duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts a virtual duration to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// event is one queue entry. Exactly one of fn / fn2 is set: fn2 events
// carry their two arguments inline, so hot callers (netsim's per-packet
// transmit/receive hops) schedule without allocating a capturing closure —
// pointer-shaped arguments box into `any` for free.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among events with equal time
	fn   func()
	fn2  func(a, b any)
	a, b any
}

// Engine is a discrete-event simulation loop.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events []event // 4-ary min-heap ordered by (at, seq)
	rng    *rand.Rand
	// Executed counts events run so far; useful as a progress and
	// runaway-loop diagnostic.
	Executed uint64
}

// NewEngine returns an engine at time zero with a deterministic random
// source derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. All randomness in a
// simulation (loss, jitter, workload) must come from here to keep runs
// reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// push inserts ev, sifting up through 4-ary parents. The held element is
// written once at its final slot instead of swapping pairwise.
func (e *Engine) push(ev event) {
	e.events = append(e.events, ev)
	h := e.events
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if h[p].at < ev.at || (h[p].at == ev.at && h[p].seq < ev.seq) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
}

// pop removes and returns the minimum event. The vacated tail slot is
// zeroed so the backing array does not retain closures or boxed arguments.
func (e *Engine) pop() event {
	h := e.events
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{}
	h = h[:n]
	e.events = h
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if h[j].at < h[m].at || (h[j].at == h[m].at && h[j].seq < h[m].seq) {
					m = j
				}
			}
			if last.at < h[m].at || (last.at == h[m].at && last.seq < h[m].seq) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return top
}

// schedule clamps t to the present, assigns the FIFO sequence number and
// enqueues.
func (e *Engine) schedule(t Time, ev event) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev.at = t
	ev.seq = e.seq
	e.push(ev)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is clamped to the current time (the event runs next, after already-pending
// events at the current time).
func (e *Engine) At(t Time, fn func()) {
	e.schedule(t, event{fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// At2 schedules fn(a, b) at absolute virtual time t. Unlike At, no closure
// is needed: callers keep one capture-free fn per call site and pass the
// state as arguments, which makes scheduling allocation-free when a and b
// are pointer-shaped (pointers, funcs, channels, maps).
func (e *Engine) At2(t Time, fn func(a, b any), a, b any) {
	e.schedule(t, event{fn2: fn, a: a, b: b})
}

// After2 schedules fn(a, b) to run d nanoseconds from now.
func (e *Engine) After2(d Time, fn func(a, b any), a, b any) {
	e.At2(e.now+d, fn, a, b)
}

// Step executes the next pending event, advancing virtual time. It reports
// whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.Executed++
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.fn2(ev.a, ev.b)
	}
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the
// current time to the deadline. Events scheduled beyond the deadline remain
// queued.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d nanoseconds of virtual time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// NextEventTime returns the timestamp of the earliest queued event and
// whether one exists.
func (e *Engine) NextEventTime() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}
