// Package sim implements a deterministic discrete-event simulation engine.
//
// All of the network simulation in this repository is driven by a single
// Engine: entities schedule closures at virtual timestamps, and the engine
// executes them in (time, sequence) order. Determinism is guaranteed by the
// FIFO tie-break on equal timestamps and by the seeded random source, so a
// simulation run is exactly reproducible from its seed.
//
// The event queue is a monomorphic 4-ary min-heap over a concrete event
// struct: no container/heap, no interface boxing, no allocation per
// scheduled event once the backing array has grown to the working set. The
// (time, seq) tie-break gives every event a unique total-order key, so the
// pop order — and therefore every simulation trace — is byte-identical to
// the previous binary-heap implementation.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is a virtual timestamp in nanoseconds since the start of the
// simulation. It is the same unit as the 48-bit message timestamps in the
// 1Pipe packet header.
type Time int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats the time with microsecond granularity for logs.
func (t Time) String() string {
	return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
}

// Seconds converts a virtual duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts a virtual duration to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// event is one queue entry. Exactly one of fn / fn2 is set: fn2 events
// carry their two arguments inline, so hot callers (netsim's per-packet
// transmit/receive hops) schedule without allocating a capturing closure —
// pointer-shaped arguments box into `any` for free.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among events with equal time
	fn   func()
	fn2  func(a, b any)
	a, b any
}

// Engine is a discrete-event simulation loop.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events []event // 4-ary min-heap ordered by (at, seq)
	rng    *rand.Rand
	// Executed counts events run so far; useful as a progress and
	// runaway-loop diagnostic.
	Executed uint64

	// dead counts tombstones: events still in the heap whose effect was
	// cancelled (a stopped or re-armed Timer). They execute as no-ops, so
	// Pending subtracts them to report the number of *live* events.
	dead int

	// Sharded operation (see ShardedEngine). A standalone engine leaves all
	// of these zero and pays only a nil check on the hot paths.
	//
	// nowp, when non-nil, is a clock shared by every shard of a lockstep
	// group: the group executes one global event at a time, so all shards
	// observe the same virtual time, exactly as a single engine would.
	// gseq, when non-nil, is the group's shared sequence counter: ties on
	// equal timestamps break in global scheduling order across shards,
	// which makes the lockstep group order-identical to one big heap.
	nowp *Time
	gseq *uint64
	sh   *ShardedEngine
	id   int32
}

// NewEngine returns an engine at time zero with a deterministic random
// source derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time {
	if e.nowp != nil {
		return *e.nowp
	}
	return e.now
}

// setNow advances the engine clock (or the lockstep group clock).
func (e *Engine) setNow(t Time) {
	if e.nowp != nil {
		*e.nowp = t
	} else {
		e.now = t
	}
}

// Shard returns the engine's shard index within its ShardedEngine group
// (0 for a standalone engine).
func (e *Engine) Shard() int32 { return e.id }

// Rand returns the engine's deterministic random source. All randomness in a
// simulation (loss, jitter, workload) must come from here to keep runs
// reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// push inserts ev, sifting up through 4-ary parents. The held element is
// written once at its final slot instead of swapping pairwise.
func (e *Engine) push(ev event) {
	e.events = append(e.events, ev)
	h := e.events
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if h[p].at < ev.at || (h[p].at == ev.at && h[p].seq < ev.seq) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
}

// pop removes and returns the minimum event. The vacated tail slot is
// zeroed so the backing array does not retain closures or boxed arguments.
func (e *Engine) pop() event {
	h := e.events
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{}
	h = h[:n]
	e.events = h
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if h[j].at < h[m].at || (h[j].at == h[m].at && h[j].seq < h[m].seq) {
					m = j
				}
			}
			if last.at < h[m].at || (last.at == h[m].at && last.seq < h[m].seq) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return top
}

// schedule clamps t to the present, assigns the FIFO sequence number and
// enqueues.
func (e *Engine) schedule(t Time, ev event) {
	if now := e.Now(); t < now {
		t = now
	}
	if e.gseq != nil {
		*e.gseq++
		ev.seq = *e.gseq
	} else {
		e.seq++
		ev.seq = e.seq
	}
	ev.at = t
	e.push(ev)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is clamped to the current time (the event runs next, after already-pending
// events at the current time).
func (e *Engine) At(t Time, fn func()) {
	e.schedule(t, event{fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.Now()+d, fn) }

// At2 schedules fn(a, b) at absolute virtual time t. Unlike At, no closure
// is needed: callers keep one capture-free fn per call site and pass the
// state as arguments, which makes scheduling allocation-free when a and b
// are pointer-shaped (pointers, funcs, channels, maps).
func (e *Engine) At2(t Time, fn func(a, b any), a, b any) {
	e.schedule(t, event{fn2: fn, a: a, b: b})
}

// After2 schedules fn(a, b) to run d nanoseconds from now.
func (e *Engine) After2(d Time, fn func(a, b any), a, b any) {
	e.At2(e.Now()+d, fn, a, b)
}

// At2On schedules fn(a, b) at absolute time t on dst's event queue. It is
// the cross-shard handoff primitive: e must be the engine currently
// executing (the caller's shard), dst the shard that owns the target state.
//
//   - Standalone or same-shard: identical to dst.At2.
//   - Lockstep group: a direct push onto dst's heap with the group's shared
//     sequence number — order-identical to a single global heap.
//   - Parallel group: the event is buffered in the sender's outbox and
//     injected at the next window barrier, ordered by (time, srcShard, seq).
//     t must be at least one lookahead ahead of the sender's clock; the
//     barrier panics on violations instead of corrupting causality.
func (e *Engine) At2On(dst *Engine, t Time, fn func(a, b any), a, b any) {
	if dst == e || e.sh == nil || !e.sh.parallel {
		dst.schedule(t, event{fn2: fn, a: a, b: b})
		return
	}
	e.seq++
	ob := &e.sh.outbox[e.id]
	*ob = append(*ob, xev{dst: dst.id, at: t, seq: e.seq, src: e.id, fn2: fn, a: a, b: b})
}

// Step executes the next pending event, advancing virtual time. It reports
// whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.pop()
	e.setNow(ev.at)
	e.Executed++
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.fn2(ev.a, ev.b)
	}
	return true
}

// Run executes events until the queue is empty. On a shard of a
// ShardedEngine group, the call drives the whole group — pre-sharding
// call sites that hold one engine keep working when the simulation is
// sharded underneath them.
func (e *Engine) Run() {
	if e.sh != nil {
		e.sh.Run()
		return
	}
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the
// current time to the deadline. Events scheduled beyond the deadline remain
// queued. On a shard of a ShardedEngine group, the call drives the whole
// group (see Run); it must come from the coordinating goroutine, never
// from inside an event.
func (e *Engine) RunUntil(deadline Time) {
	if e.sh != nil {
		e.sh.RunUntil(deadline)
		return
	}
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.Now() < deadline {
		e.setNow(deadline)
	}
}

// RunFor advances the simulation by d nanoseconds of virtual time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.Now() + d) }

// runWindow executes every event with timestamp strictly below horizon.
// It is the per-shard body of one conservative-lookahead window: events at
// or beyond the horizon may still be preempted by a cross-shard arrival, so
// they stay queued. The shard clock is left at the last executed event.
func (e *Engine) runWindow(horizon Time) {
	for len(e.events) > 0 && e.events[0].at < horizon {
		e.Step()
	}
}

// Pending reports the number of queued *live* events: cancelled timer
// firings still sitting in the heap as tombstones are not counted, so the
// value is accurate after RunUntil exits early with stopped timers pending.
func (e *Engine) Pending() int { return len(e.events) - e.dead }

// Drain discards every queued event and returns how many of them were live
// (not tombstones of cancelled timers). Use it at shutdown to account for
// work the simulation never executed; after Drain the queue is empty and
// Pending reports zero.
func (e *Engine) Drain() int {
	n := len(e.events) - e.dead
	for i := range e.events {
		e.events[i] = event{}
	}
	e.events = e.events[:0]
	e.dead = 0
	return n
}

// NextEventTime returns the timestamp of the earliest queued event and
// whether one exists.
func (e *Engine) NextEventTime() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}
