// Package sim implements a deterministic discrete-event simulation engine.
//
// All of the network simulation in this repository is driven by a single
// Engine: entities schedule closures at virtual timestamps, and the engine
// executes them in (time, sequence) order. Determinism is guaranteed by the
// FIFO tie-break on equal timestamps and by the seeded random source, so a
// simulation run is exactly reproducible from its seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a virtual timestamp in nanoseconds since the start of the
// simulation. It is the same unit as the 48-bit message timestamps in the
// 1Pipe packet header.
type Time int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats the time with microsecond granularity for logs.
func (t Time) String() string {
	return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
}

// Seconds converts a virtual duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts a virtual duration to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among events with equal time
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event   { return h[0] }

// Engine is a discrete-event simulation loop.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *rand.Rand
	// Executed counts events run so far; useful as a progress and
	// runaway-loop diagnostic.
	Executed uint64
}

// NewEngine returns an engine at time zero with a deterministic random
// source derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. All randomness in a
// simulation (loss, jitter, workload) must come from here to keep runs
// reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is clamped to the current time (the event runs next, after already-pending
// events at the current time).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Step executes the next pending event, advancing virtual time. It reports
// whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.Executed++
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the
// current time to the deadline. Events scheduled beyond the deadline remain
// queued.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events.peek().at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d nanoseconds of virtual time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// NextEventTime returns the timestamp of the earliest queued event and
// whether one exists.
func (e *Engine) NextEventTime() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events.peek().at, true
}
