package udpnet

import (
	"bytes"
	"math/rand"
	"net"
	"sync"
	"time"

	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/wire"
)

// Switch is the software switch of the UDP fabric: one UDP socket that
// keeps a barrier register pair per registered host uplink, stamps
// forwarded packets with the aggregated minimum (eq. 4.1), relays beacons,
// and optionally injects loss.
type Switch struct {
	cfg   Config
	conn  *net.UDPConn
	epoch time.Time

	mu        sync.Mutex
	addrs     map[int]*net.UDPAddr // host id -> address
	blackhole map[int]bool         // host id -> data-plane partitioned
	// drained marks hosts that gracefully left: excluded from aggregation
	// and beacon relays, data toward them dropped, and their registration
	// never resurrected. Distinct from blackhole (a fault) — a drain is a
	// decision, so the parked register must not freeze the barrier.
	drained map[int]bool
	regBE   map[int]sim.Time
	regC    map[int]sim.Time
	// lastFwd records when each downlink last carried a forwarded data
	// packet; recently-active downlinks skip standalone beacons because the
	// forwarded packets already carry the restamped aggregate (§4.2).
	lastFwd map[int]time.Time
	outBE   sim.Time
	outC    sim.Time
	rng     *rand.Rand
	// imp applies Config.Impair. It draws from its own RNG, never s.rng —
	// seed-pinned tests depend on the legacy stream staying untouched.
	imp *netsim.ImpairState
	closed  bool
	stopped chan struct{}
	wg      sync.WaitGroup
	encBuf  []byte // reusable forward-path encode buffer; guarded by mu
	// regNotify is signalled (non-blocking, capacity 1) whenever a NEW host
	// registers, so Start can wait on registration instead of polling.
	regNotify chan struct{}

	// Forwarded / Dropped count data-plane packets; BeaconsSuppressed
	// counts downlink beacons skipped by piggybacking (statistics).
	Forwarded, Dropped, BeaconsSuppressed uint64
}

func newSwitch(cfg Config, epoch time.Time) (*Switch, error) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	s := &Switch{
		cfg: cfg, conn: conn, epoch: epoch,
		addrs:     make(map[int]*net.UDPAddr),
		blackhole: make(map[int]bool),
		drained:   make(map[int]bool),
		regBE:     make(map[int]sim.Time),
		regC:      make(map[int]sim.Time),
		lastFwd:   make(map[int]time.Time),
		rng:       rand.New(rand.NewSource(seed)),
		stopped:   make(chan struct{}),
		regNotify: make(chan struct{}, 1),
	}
	if cfg.Impair != nil && *cfg.Impair != (netsim.Impairment{}) {
		imp := *cfg.Impair
		if cfg.LossRate > 0 {
			imp.Loss = 0 // legacy knob wins the uniform component
		}
		s.imp = netsim.NewImpairState(&imp, seed, 0)
	}
	s.wg.Add(2)
	go s.readLoop()
	go s.beaconLoop()
	return s, nil
}

// Addr returns the switch's UDP address.
func (s *Switch) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// SetBlackhole installs or clears a grey failure on one host: the switch
// keeps consuming its beacons (control plane intact, so the global barrier
// keeps advancing) but drops every data-plane packet to or from it. This is
// the partition shape the UDP fabric can survive without a controller —
// a full cut would freeze the barrier aggregation at the parked register,
// which is exactly the §5.2 failure-handling territory the simulator's
// chaos harness covers.
func (s *Switch) SetBlackhole(host int, blocked bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blackhole[host] = blocked
}

// SetDrained removes a gracefully departed host from aggregation and
// beacon relays for good.
func (s *Switch) SetDrained(host int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drained[host] = true
}

// Drained reports whether a host has gracefully left.
func (s *Switch) Drained(host int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drained[host]
}

func (s *Switch) registered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.addrs)
}

func (s *Switch) readLoop() {
	defer s.wg.Done()
	buf := make([]byte, 64*1024)
	// One packet struct serves every datagram: handle() forwards or drops
	// synchronously and never retains it.
	var pkt netsim.Packet
	for {
		n, from, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		payload, derr := wire.DecodeInto(&pkt, buf[:n], sim.Time(time.Since(s.epoch)))
		if derr != nil {
			continue
		}
		s.handle(&pkt, payload, buf[:n], from)
	}
}

func (s *Switch) handle(pkt *netsim.Packet, payload, raw []byte, from *net.UDPAddr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	srcHost := int(pkt.Src) / s.cfg.ProcsPerHost

	// Registration heartbeat.
	if pkt.Kind == netsim.KindCtrl && bytes.Equal(payload, registerPayload) {
		if s.drained[srcHost] {
			return // departed hosts do not rejoin under the same id
		}
		_, known := s.addrs[srcHost]
		if !known {
			// Live join: seed the new uplink's registers at the current
			// aggregate before it joins the minimum. The host's clock
			// shares the fabric epoch, so everything it emits from now on
			// carries at least this barrier — admitting the link can
			// never regress the aggregate, only (briefly) hold it.
			be, c := s.aggregateLocked()
			if be > s.regBE[srcHost] {
				s.regBE[srcHost] = be
			}
			if c > s.regC[srcHost] {
				s.regC[srcHost] = c
			}
		}
		s.addrs[srcHost] = from
		if !known {
			select {
			case s.regNotify <- struct{}{}:
			default:
			}
		}
		return
	}

	if s.drained[srcHost] {
		return // straggler from a departed host: no register resurrection
	}
	// Update this uplink's registers (§4.1).
	if pkt.BarrierBE > s.regBE[srcHost] {
		s.regBE[srcHost] = pkt.BarrierBE
	}
	if pkt.BarrierC > s.regC[srcHost] {
		s.regC[srcHost] = pkt.BarrierC
	}
	switch pkt.Kind {
	case netsim.KindBeacon, netsim.KindCommit:
		return // consumed
	}

	dstHost := int(pkt.Dst) / s.cfg.ProcsPerHost
	if s.blackhole[srcHost] || s.blackhole[dstHost] || s.drained[dstHost] {
		s.Dropped++
		return
	}
	if s.cfg.LossRate > 0 && s.rng.Float64() < s.cfg.LossRate {
		s.Dropped++
		return
	}
	var extra time.Duration
	if s.imp != nil {
		now := sim.Time(time.Since(s.epoch))
		if s.imp.Drop(now) {
			s.Dropped++
			return
		}
		extra = time.Duration(s.imp.Delay(now))
	}
	be, c := s.aggregateLocked()
	dst := s.addrs[dstHost]
	if dst == nil {
		s.Dropped++
		return
	}
	// Restamp the barrier fields in the raw datagram (the chip path:
	// rewrite two header fields, forward the rest untouched). The encode
	// buffer is owned by the switch and reused under the lock.
	pkt.BarrierBE, pkt.BarrierC = be, c
	s.encBuf = wire.AppendEncode(s.encBuf[:0], pkt, payload)
	s.Forwarded++
	s.lastFwd[dstHost] = time.Now()
	if extra > 0 {
		// The encode buffer is reused on the next handle(); a delayed send
		// needs its own copy of the datagram.
		held := append([]byte(nil), s.encBuf...)
		time.AfterFunc(extra, func() { s.conn.WriteToUDP(held, dst) })
		return
	}
	s.conn.WriteToUDP(s.encBuf, dst)
}

func (s *Switch) aggregateLocked() (sim.Time, sim.Time) {
	first := true
	var minBE, minC sim.Time
	for h := range s.addrs {
		if s.drained[h] {
			continue
		}
		be, c := s.regBE[h], s.regC[h]
		if first {
			minBE, minC = be, c
			first = false
		} else {
			if be < minBE {
				minBE = be
			}
			if c < minC {
				minC = c
			}
		}
	}
	if !first {
		if minBE > s.outBE {
			s.outBE = minBE
		}
		if minC > s.outC {
			s.outC = minC
		}
	}
	return s.outBE, s.outC
}

func (s *Switch) beaconLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.BeaconInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				return
			}
			be, c := s.aggregateLocked()
			piggyback := s.cfg.Endpoint == nil || !s.cfg.Endpoint.DisablePiggyback
			b := wire.Encode(&netsim.Packet{Kind: netsim.KindBeacon, BarrierBE: be, BarrierC: c}, nil)
			now := time.Now()
			for h, addr := range s.addrs {
				if s.drained[h] {
					continue
				}
				if piggyback && now.Sub(s.lastFwd[h]) < s.cfg.BeaconInterval {
					s.BeaconsSuppressed++
					continue
				}
				s.conn.WriteToUDP(b, addr)
			}
			s.mu.Unlock()
		case <-s.stopped:
			return
		}
	}
}

func (s *Switch) close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.stopped)
	}
	s.mu.Unlock()
	s.conn.Close()
	s.wg.Wait()
}
