// Package udpnet deploys 1Pipe over real UDP sockets: every host is a UDP
// endpoint running the unmodified lib1pipe state machines
// (internal/core), and a software switch — another UDP socket — performs
// the §4.1 barrier aggregation and forwards packets between hosts, exactly
// like the host-delegate incarnation of §6.2.3. Packets travel in the
// 48-bit-timestamp wire format of internal/wire, so PAWS wraparound
// handling is exercised on a real network path.
//
// All sockets bind to the loopback interface and are launched by one
// Start call. Nothing in the protocol requires co-residence — hosts and
// switch share only the wire format and a clock epoch — so splitting the
// endpoints across OS processes (disciplined by the system clock) is a
// mechanical extension; the in-process launcher keeps the tests hermetic.
package udpnet

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/obs"
	"onepipe/internal/sim"
	"onepipe/internal/wire"
)

// Config parameterizes the UDP fabric.
type Config struct {
	Hosts          int
	ProcsPerHost   int
	BeaconInterval time.Duration
	// LossRate drops packets at the switch (loopback never loses, so the
	// reliability machinery is exercised by injection).
	//
	// Deprecated: use Impair with a netsim.Impairment{Loss: rate}. When
	// both are set, the nonzero LossRate takes precedence over the
	// impairment's uniform Loss (its other components still apply).
	LossRate float64
	// Seed seeds the switch's loss-injection RNG so lossy runs are
	// reproducible; zero draws from the wall clock.
	Seed int64
	// Impair, when non-nil, degrades data-plane packets at the switch with
	// the composable model (uniform loss, burst loss, jitter, extra delay).
	// One switch serves the fabric, so one Impairment covers every path.
	Impair *netsim.Impairment
	// Endpoint overrides lib1pipe configuration.
	Endpoint *core.Config
	// RegisterTimeout bounds Start's wait for all hosts to register at the
	// switch; zero means 5s.
	RegisterTimeout time.Duration
	// Trace installs a lifecycle tracer (internal/obs) on every host.
	Trace bool
	// DebugAddr, if non-empty, serves /debug/vars, /debug/pprof and the
	// live /debug/onepipe span breakdown on this address (use "127.0.0.1:0"
	// for an ephemeral port).
	DebugAddr string
}

// DefaultConfig returns a loopback fabric with millisecond beacons.
func DefaultConfig(hosts, procsPerHost int) Config {
	return Config{Hosts: hosts, ProcsPerHost: procsPerHost, BeaconInterval: time.Millisecond}
}

// registerPayload marks a control datagram announcing a host's address.
var registerPayload = []byte("1PIPE-REGISTER")

// Cluster is a running UDP deployment.
type Cluster struct {
	Switch *Switch
	Hosts  []*HostNode
	cfg    Config
	epoch  time.Time
	debug  *http.Server
}

// Start binds the switch and every host on loopback and registers them.
func Start(cfg Config) (*Cluster, error) {
	if cfg.ProcsPerHost <= 0 {
		cfg.ProcsPerHost = 1
	}
	epoch := time.Now()
	sw, err := newSwitch(cfg, epoch)
	if err != nil {
		return nil, err
	}
	c := &Cluster{Switch: sw, cfg: cfg, epoch: epoch}
	for h := 0; h < cfg.Hosts; h++ {
		hn, err := newHostNode(h, cfg, sw.Addr(), epoch, 0)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Hosts = append(c.Hosts, hn)
		c.installStuckHook(hn)
	}
	// Wait for every host to be registered at the switch: the switch
	// signals regNotify on each new registration, so no polling.
	timeout := cfg.RegisterTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for sw.registered() < cfg.Hosts {
		select {
		case <-sw.regNotify:
		case <-deadline.C:
			n := sw.registered()
			c.Close()
			return nil, fmt.Errorf("udpnet: only %d/%d hosts registered", n, cfg.Hosts)
		}
	}
	if cfg.DebugAddr != "" {
		srv, err := obs.ServeDebug(cfg.DebugAddr, c.traceMap)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.debug = srv
	}
	return c, nil
}

// DebugAddr returns the bound address of the debug HTTP server, or "" when
// Config.DebugAddr was unset.
func (c *Cluster) DebugAddr() string {
	if c.debug == nil {
		return ""
	}
	return c.debug.Addr
}

// Traces returns the per-host lifecycle tracers (nil entries when
// Config.Trace was off); feed them to obs.Merge for the cluster view.
func (c *Cluster) Traces() []*obs.Trace {
	out := make([]*obs.Trace, len(c.Hosts))
	for i, h := range c.Hosts {
		out[i] = h.Trace()
	}
	return out
}

func (c *Cluster) traceMap() map[string]*obs.Trace {
	out := make(map[string]*obs.Trace)
	for i, h := range c.Hosts {
		if t := h.Trace(); t != nil {
			out[fmt.Sprintf("host%d", i)] = t
		}
	}
	return out
}

// installStuckHook wires the degenerate-controller escalation: a
// scattering stuck toward a drained (departed) host resolves as a
// send-failure at its sender instead of parking the commit floor.
func (c *Cluster) installStuckHook(hn *HostNode) {
	pph := c.cfg.ProcsPerHost
	hn.mu.Lock()
	hn.core.OnStuck = func(src, dst netsim.ProcID, ts sim.Time) {
		dh := int(dst) / pph
		// Hand off: OnStuck fires inside the endpoint with its lock held.
		time.AfterFunc(0, func() {
			if !c.Switch.Drained(dh) {
				return
			}
			hn.mu.Lock()
			if !hn.closed {
				hn.core.ResolveUnreachable(dst, ts)
			}
			hn.mu.Unlock()
		})
	}
	hn.mu.Unlock()
}

// Join attaches a new host to the running fabric and returns its index.
// The switch seeds the new uplink's registers at its current aggregate on
// registration, and the host's timestamp floor is forced to the shared
// clock first, so the join can never regress the barrier. Blocks until
// the switch has registered the host.
func (c *Cluster) Join() (int, error) {
	hi := len(c.Hosts)
	before := c.Switch.registered()
	hn, err := newHostNode(hi, c.cfg, c.Switch.Addr(), c.epoch, c.Now())
	if err != nil {
		return -1, err
	}
	timeout := c.cfg.RegisterTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for c.Switch.registered() <= before {
		select {
		case <-c.Switch.regNotify:
		case <-deadline.C:
			hn.close()
			return -1, fmt.Errorf("udpnet: joining host %d never registered", hi)
		}
	}
	c.Hosts = append(c.Hosts, hn)
	c.installStuckHook(hn)
	return hi, nil
}

// Drain gracefully removes a host: sends are refused immediately, the
// send window flushes, then the switch detaches the uplink from
// aggregation and the endpoint closes. Blocks until complete. Peers'
// stuck sends toward the departed host resolve via send-failure.
func (c *Cluster) Drain(host int) error {
	if host < 0 || host >= len(c.Hosts) {
		return fmt.Errorf("udpnet: no such host %d", host)
	}
	if c.Switch.Drained(host) {
		return fmt.Errorf("udpnet: host %d already drained", host)
	}
	hn := c.Hosts[host]
	fin := make(chan struct{})
	hn.mu.Lock()
	if hn.closed {
		hn.mu.Unlock()
		return fmt.Errorf("udpnet: host %d closed: %w", host, core.ErrClosed)
	}
	hn.core.Drain(func() { close(fin) })
	hn.mu.Unlock()
	<-fin
	c.Switch.SetDrained(host)
	hn.close()
	return nil
}

// Proc returns a process handle.
func (c *Cluster) Proc(p int) *ProcHandle {
	pph := c.Hosts[0].cfg.ProcsPerHost
	return &ProcHandle{host: c.Hosts[p/pph], id: netsim.ProcID(p)}
}

// NumProcs returns the total process count.
func (c *Cluster) NumProcs() int { return len(c.Hosts) * c.Hosts[0].cfg.ProcsPerHost }

// Now returns the fabric clock: nanoseconds since the shared epoch.
func (c *Cluster) Now() sim.Time { return sim.Time(time.Since(c.epoch)) }

// Close shuts the fabric down.
func (c *Cluster) Close() {
	if c.debug != nil {
		c.debug.Close()
		c.debug = nil
	}
	for _, h := range c.Hosts {
		h.close()
	}
	if c.Switch != nil {
		c.Switch.close()
	}
}

// ProcHandle exposes one process's API with the host's lock held.
type ProcHandle struct {
	host *HostNode
	id   netsim.ProcID
}

// OnDeliver installs the delivery callback (invoked with the host lock
// held; keep it short or hand off).
func (p *ProcHandle) OnDeliver(fn func(core.Delivery)) {
	p.host.mu.Lock()
	defer p.host.mu.Unlock()
	p.host.procs[p.id].OnDeliver = fn
}

// OnDeliverBatch installs the batched delivery callback (takes precedence
// over OnDeliver; the slice is reused after the callback returns).
func (p *ProcHandle) OnDeliverBatch(fn func([]core.Delivery)) {
	p.host.mu.Lock()
	defer p.host.mu.Unlock()
	p.host.procs[p.id].OnDeliverBatch = fn
}

// OnSendFail installs the send-failure callback.
func (p *ProcHandle) OnSendFail(fn func(core.SendFailure)) {
	p.host.mu.Lock()
	defer p.host.mu.Unlock()
	p.host.procs[p.id].OnSendFail = fn
}

// OnProcFail installs the process-failure callback.
func (p *ProcHandle) OnProcFail(fn func(netsim.ProcID, sim.Time)) {
	p.host.mu.Lock()
	defer p.host.mu.Unlock()
	p.host.procs[p.id].OnProcFail = fn
}

// Send issues a best-effort scattering; message Data must be []byte (it
// crosses a real socket).
func (p *ProcHandle) Send(msgs []core.Message) error {
	return p.host.send(p.id, msgs, core.SendOptions{})
}

// SendReliable issues a reliable scattering.
func (p *ProcHandle) SendReliable(msgs []core.Message) error {
	return p.host.send(p.id, msgs, core.SendOptions{Reliable: true})
}

// SendOpts issues a scattering with explicit options.
func (p *ProcHandle) SendOpts(msgs []core.Message, o core.SendOptions) error {
	return p.host.send(p.id, msgs, o)
}

// HostNode is one UDP host endpoint.
type HostNode struct {
	cfg    Config
	id     int
	conn   *net.UDPConn
	swAddr *net.UDPAddr
	epoch  time.Time

	mu     sync.Mutex
	core   *core.Host
	procs  map[netsim.ProcID]*core.Proc
	closed bool
	wg     sync.WaitGroup
}

// udpWire adapts the socket to core.Wire. Now() is nanoseconds since the
// shared epoch.
type udpWire struct{ h *HostNode }

func (w udpWire) Now() sim.Time { return sim.Time(time.Since(w.h.epoch)) }

func (w udpWire) After(d sim.Time, fn func()) {
	h := w.h
	time.AfterFunc(time.Duration(d), func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if !h.closed {
			fn()
		}
	})
}

// sendBufPool recycles encode buffers across Send calls; each is large
// enough for a max-size datagram so AppendEncode never grows it.
var sendBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64*1024)
		return &b
	},
}

func (w udpWire) Send(pkt *netsim.Packet) {
	var payload []byte
	if b, ok := pkt.Payload.([]byte); ok && pkt.EndOfMsg {
		payload = b
	}
	bp := sendBufPool.Get().(*[]byte)
	buf := wire.AppendEncode((*bp)[:0], pkt, payload)
	// Fire-and-forget datagram to the switch; UDP send errors surface as
	// loss, which the protocol already tolerates.
	w.h.conn.WriteToUDP(buf, w.h.swAddr)
	*bp = buf[:0]
	sendBufPool.Put(bp)
	netsim.PutPacket(pkt) // the wire owns the packet once sent
}

// newHostNode binds one host endpoint; a nonzero floor forces its
// timestamping state above it before the first emission (live join).
func newHostNode(id int, cfg Config, swAddr *net.UDPAddr, epoch time.Time, floor sim.Time) (*HostNode, error) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	h := &HostNode{cfg: cfg, id: id, conn: conn, swAddr: swAddr, epoch: epoch,
		procs: make(map[netsim.ProcID]*core.Proc)}
	ecfg := core.DefaultConfig()
	if cfg.Endpoint != nil {
		ecfg = *cfg.Endpoint
	}
	ecfg.BeaconInterval = sim.Time(cfg.BeaconInterval)
	ecfg.UseDataBarriers = true
	ecfg.RTO = sim.Time(20 * cfg.BeaconInterval)
	ecfg.SendFailTimeout = sim.Time(100 * cfg.BeaconInterval)
	h.mu.Lock()
	h.core = core.NewHost(id, udpWire{h: h}, ecfg)
	if floor > 0 {
		h.core.SetFloor(floor)
	}
	if cfg.Trace {
		h.core.Obs = obs.NewTrace()
	}
	for p := 0; p < cfg.ProcsPerHost; p++ {
		pid := netsim.ProcID(id*cfg.ProcsPerHost + p)
		h.procs[pid] = h.core.AddProc(pid)
	}
	h.core.Start()
	h.mu.Unlock()
	// Announce ourselves to the switch.
	hello := wire.Encode(&netsim.Packet{Kind: netsim.KindCtrl,
		Src: netsim.ProcID(id * cfg.ProcsPerHost)}, registerPayload)
	conn.WriteToUDP(hello, swAddr)
	h.wg.Add(1)
	go h.readLoop()
	return h, nil
}

func (h *HostNode) readLoop() {
	defer h.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, _, err := h.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		pkt := netsim.GetPacket()
		payload, derr := wire.DecodeInto(pkt, buf[:n], sim.Time(time.Since(h.epoch)))
		if derr != nil {
			netsim.PutPacket(pkt)
			continue
		}
		if len(payload) > 0 {
			// The payload aliases the read buffer; copy before the next read.
			cp := append([]byte(nil), payload...)
			if pkt.Frame {
				f, ferr := wire.ParseFramePayload(cp, sim.Time(time.Since(h.epoch)))
				if ferr != nil {
					netsim.PutPacket(pkt)
					continue
				}
				pkt.Payload = f // entry Data aliases cp, which outlives the frame
			} else {
				pkt.Payload = cp
			}
		}
		h.mu.Lock()
		if !h.closed {
			h.core.HandlePacket(pkt) // consumes pkt
		} else {
			netsim.PutPacket(pkt)
		}
		h.mu.Unlock()
	}
}

// Trace returns the host's lifecycle tracer (nil unless Config.Trace).
func (h *HostNode) Trace() *obs.Trace {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.core.Obs
}

func (h *HostNode) send(src netsim.ProcID, msgs []core.Message, o core.SendOptions) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return fmt.Errorf("udpnet: host %d closed: %w", h.id, core.ErrClosed)
	}
	p := h.procs[src]
	if p == nil {
		return fmt.Errorf("udpnet: proc %d not on host %d", src, h.id)
	}
	return p.SendOpts(msgs, o)
}

func (h *HostNode) close() {
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		h.core.Stop()
	}
	h.mu.Unlock()
	h.conn.Close()
	h.wg.Wait()
}
