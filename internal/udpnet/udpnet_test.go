package udpnet

import (
	"sync"
	"testing"
	"time"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
)

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestUDPDelivery(t *testing.T) {
	c, err := Start(DefaultConfig(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var mu sync.Mutex
	var got []string
	c.Proc(1).OnDeliver(func(d core.Delivery) {
		mu.Lock()
		got = append(got, string(d.Data.([]byte)))
		mu.Unlock()
	})
	if err := c.Proc(0).Send([]core.Message{{Dst: 1, Data: []byte("over-udp"), Size: 8}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1
	})
	mu.Lock()
	defer mu.Unlock()
	if got[0] != "over-udp" {
		t.Fatalf("got %q", got[0])
	}
}

func TestUDPTotalOrderAcrossSockets(t *testing.T) {
	c, err := Start(DefaultConfig(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var mu sync.Mutex
	logs := make([][]sim.Time, 4)
	for i := 0; i < 4; i++ {
		i := i
		c.Proc(i).OnDeliver(func(d core.Delivery) {
			mu.Lock()
			logs[i] = append(logs[i], d.TS)
			mu.Unlock()
		})
	}
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 15; k++ {
				var msgs []core.Message
				for q := 0; q < 4; q++ {
					if q != p {
						msgs = append(msgs, core.Message{Dst: netsim.ProcID(q), Data: []byte{byte(p), byte(k)}, Size: 2})
					}
				}
				c.Proc(p).Send(msgs)
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	time.Sleep(300 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for i, log := range logs {
		total += len(log)
		for j := 1; j < len(log); j++ {
			if log[j] < log[j-1] {
				t.Fatalf("proc %d delivered out of timestamp order over UDP", i)
			}
		}
	}
	if total < 100 {
		t.Fatalf("only %d deliveries", total)
	}
}

func TestUDPReliableUnderInjectedLoss(t *testing.T) {
	cfg := DefaultConfig(3, 1)
	// High enough that a run with zero drops is implausible (the switch
	// RNG is time-seeded): ~100 packets at 20% loss.
	cfg.LossRate = 0.2
	c, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var mu sync.Mutex
	delivered := make(map[byte]int)
	for i := 1; i < 3; i++ {
		c.Proc(i).OnDeliver(func(d core.Delivery) {
			mu.Lock()
			delivered[d.Data.([]byte)[0]]++
			mu.Unlock()
		})
	}
	const rounds = 20
	for k := 0; k < rounds; k++ {
		err := c.Proc(0).SendReliable([]core.Message{
			{Dst: 1, Data: []byte{byte(k)}, Size: 1},
			{Dst: 2, Data: []byte{byte(k)}, Size: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(3 * time.Millisecond)
	}
	waitFor(t, 20*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		if len(delivered) != rounds {
			return false
		}
		for _, n := range delivered {
			if n != 2 {
				return false
			}
		}
		return true
	})
	if c.Switch.Dropped == 0 {
		t.Fatal("loss injection never dropped a packet")
	}
}

func TestUDPScatteringSharedTimestamp(t *testing.T) {
	c, err := Start(DefaultConfig(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var mu sync.Mutex
	ts := make(map[int]sim.Time)
	for i := 1; i < 3; i++ {
		i := i
		c.Proc(i).OnDeliver(func(d core.Delivery) {
			mu.Lock()
			ts[i] = d.TS
			mu.Unlock()
		})
	}
	c.Proc(0).SendReliable([]core.Message{
		{Dst: 1, Data: []byte("a"), Size: 1},
		{Dst: 2, Data: []byte("b"), Size: 1},
	})
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(ts) == 2
	})
	mu.Lock()
	defer mu.Unlock()
	if ts[1] != ts[2] {
		t.Fatalf("scattering timestamps differ over UDP: %v vs %v", ts[1], ts[2])
	}
}
