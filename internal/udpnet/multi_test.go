package udpnet

import (
	"sync"
	"testing"
	"time"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
)

func TestUDPMultipleProcsPerHost(t *testing.T) {
	c, err := Start(DefaultConfig(2, 2)) // 4 procs on 2 hosts
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.NumProcs() != 4 {
		t.Fatalf("NumProcs = %d", c.NumProcs())
	}
	var mu sync.Mutex
	got := make(map[int]string)
	for i := 1; i < 4; i++ {
		i := i
		c.Proc(i).OnDeliver(func(d core.Delivery) {
			mu.Lock()
			got[i] = string(d.Data.([]byte))
			mu.Unlock()
		})
	}
	// Scattering from proc 0 to the other three procs, including its own
	// host's sibling proc 1.
	err = c.Proc(0).Send([]core.Message{
		{Dst: 1, Data: []byte("sib"), Size: 3},
		{Dst: 2, Data: []byte("rem"), Size: 3},
		{Dst: 3, Data: []byte("rem2"), Size: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 3
	})
	mu.Lock()
	defer mu.Unlock()
	if got[1] != "sib" || got[2] != "rem" || got[3] != "rem2" {
		t.Fatalf("got %v", got)
	}
}

func TestUDPSendToUnknownProc(t *testing.T) {
	c, err := Start(DefaultConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Destination outside the fabric: the switch drops it; best-effort
	// reports a send failure rather than wedging.
	fails := 0
	var mu sync.Mutex
	c.Hosts[0].mu.Lock()
	c.Hosts[0].procs[netsim.ProcID(0)].OnSendFail = func(core.SendFailure) {
		mu.Lock()
		fails++
		mu.Unlock()
	}
	c.Hosts[0].mu.Unlock()
	c.Proc(0).Send([]core.Message{{Dst: 99, Data: []byte("x"), Size: 1}})
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return fails == 1
	})
}
