package udpnet

import (
	"net"
	"testing"
	"time"

	"onepipe/internal/netsim"
	"onepipe/internal/wire"
)

func TestSwitchRegistrationSignalsChannel(t *testing.T) {
	// Start's registration wait is event-driven: the switch must signal
	// regNotify when a new host announces itself, and must not signal for
	// a duplicate announcement.
	sw, err := newSwitch(DefaultConfig(1, 1), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	defer sw.close()
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	hello := wire.Encode(&netsim.Packet{Kind: netsim.KindCtrl}, registerPayload)
	if _, err := conn.WriteToUDP(hello, sw.Addr()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sw.regNotify:
	case <-time.After(2 * time.Second):
		t.Fatal("registration never signalled")
	}
	if got := sw.registered(); got != 1 {
		t.Fatalf("registered()=%d, want 1", got)
	}

	// Re-registration from the same host refreshes the address silently.
	if _, err := conn.WriteToUDP(hello, sw.Addr()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	select {
	case <-sw.regNotify:
		t.Fatal("duplicate registration signalled")
	default:
	}
}

func TestStartRegisterTimeout(t *testing.T) {
	// With more hosts expected than will ever register, Start must give up
	// after RegisterTimeout instead of the old fixed 5s poll loop.
	cfg := DefaultConfig(1, 1)
	cfg.RegisterTimeout = 200 * time.Millisecond
	// Sabotage registration by asking for a second host that is never
	// launched: run Start's wait directly against a lone switch.
	sw, err := newSwitch(cfg, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	sw.close()

	cfg.Hosts = 1
	begin := time.Now()
	c, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start with 1 host: %v", err)
	}
	c.Close()
	if waited := time.Since(begin); waited > 2*time.Second {
		t.Fatalf("Start took %v; event-driven wait should return almost immediately", waited)
	}
}
