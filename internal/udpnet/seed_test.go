package udpnet

import (
	"testing"
	"time"
)

// TestSeedDeterminesLossRNG pins the Config.Seed contract: equal seeds give
// the switch identical loss-injection draw sequences (so a lossy live run
// can be replayed), different seeds give different ones, and a zero seed
// still yields a working RNG. The draws are read under the switch lock, the
// same way the forwarding path consumes them.
func TestSeedDeterminesLossRNG(t *testing.T) {
	mk := func(seed int64) *Switch {
		s, err := newSwitch(Config{
			Hosts: 2, ProcsPerHost: 1, BeaconInterval: time.Hour, Seed: seed,
		}, time.Now())
		if err != nil {
			t.Fatalf("newSwitch: %v", err)
		}
		return s
	}
	draw := func(s *Switch, k int) []float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		out := make([]float64, k)
		for i := range out {
			out[i] = s.rng.Float64()
		}
		return out
	}

	a, b, c := mk(7), mk(7), mk(8)
	defer a.close()
	defer b.close()
	defer c.close()

	da, db, dc := draw(a, 16), draw(b, 16), draw(c, 16)
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("draw %d differs across switches seeded identically: %v vs %v", i, da[i], db[i])
		}
	}
	same := true
	for i := range da {
		if da[i] != dc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical loss draw sequences")
	}

	z := mk(0)
	defer z.close()
	if got := draw(z, 1); len(got) != 1 {
		t.Fatal("zero seed produced no draws")
	}
}
