package udpnet

import (
	"sync"
	"testing"
	"time"

	"onepipe/internal/core"
)

// TestUDPPartitionHealsAndDelivers smoke-tests a data-plane partition on the
// real-UDP fabric: host 2 is blackholed at the switch (beacons still flow,
// so the barrier keeps advancing), a reliable scattering spanning the cut is
// submitted, and nothing may be delivered while the cut is up — the commit
// barrier cannot pass a scattering whose member is unACKed (§5.1). Healing
// the cut inside the retransmission budget must deliver both members.
func TestUDPPartitionHealsAndDelivers(t *testing.T) {
	c, err := Start(DefaultConfig(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var mu sync.Mutex
	delivered := make(map[int]int)
	for i := 1; i < 3; i++ {
		i := i
		c.Proc(i).OnDeliver(func(d core.Delivery) {
			mu.Lock()
			delivered[i]++
			mu.Unlock()
		})
	}

	c.Switch.SetBlackhole(2, true)
	if err := c.Proc(0).SendReliable([]core.Message{
		{Dst: 1, Data: []byte("x"), Size: 1},
		{Dst: 2, Data: []byte("x"), Size: 1},
	}); err != nil {
		t.Fatal(err)
	}

	// While the cut is up, the scattering must stay wholly undelivered:
	// host 2 cannot receive, and host 1's copy is gated behind a commit
	// barrier that cannot pass the unACKed member.
	time.Sleep(200 * time.Millisecond)
	mu.Lock()
	early := delivered[1] + delivered[2]
	mu.Unlock()
	if early != 0 {
		t.Fatalf("%d deliveries while partitioned — atomicity hole", early)
	}

	c.Switch.SetBlackhole(2, false)
	waitFor(t, 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return delivered[1] == 1 && delivered[2] == 1
	})
	if c.Switch.Dropped == 0 {
		t.Fatal("blackhole never dropped a packet")
	}
}
