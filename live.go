package onepipe

import (
	"time"

	"onepipe/internal/core"
	"onepipe/internal/livenet"
	"onepipe/internal/udpnet"
)

// Live is a real-time 1Pipe fabric: the same protocol state machines as
// the simulated Cluster, but running on wall-clock time — either over
// in-process channels or over real UDP sockets on loopback. Use it to
// embed 1Pipe semantics in an actual program rather than an experiment.
type Live struct {
	np      int
	send    func(p int, reliable bool, msgs []Message) error
	deliver func(p int, fn func(Delivery))
	stop    func()
}

// LiveConfig sizes a real-time fabric.
type LiveConfig struct {
	Hosts        int
	ProcsPerHost int
	// BeaconInterval is T_beacon in wall-clock time (default 1 ms —
	// coarse enough for OS timers).
	BeaconInterval time.Duration
	// LossRate (UDP fabric only) injects loss at the software switch.
	LossRate float64
}

// NewLiveCluster starts an in-process real-time fabric (goroutines and
// channels). Stop it with Close.
func NewLiveCluster(cfg LiveConfig) *Live {
	lcfg := livenet.DefaultConfig(cfg.Hosts, cfg.ProcsPerHost)
	if cfg.BeaconInterval > 0 {
		lcfg.BeaconInterval = cfg.BeaconInterval
	}
	n := livenet.New(lcfg)
	return &Live{
		np: n.NumProcs(),
		send: func(p int, reliable bool, msgs []Message) error {
			return n.Send(p, reliable, msgs)
		},
		deliver: func(p int, fn func(Delivery)) {
			n.Do(func() { n.Proc(p).OnDeliver = fn })
		},
		stop: n.Stop,
	}
}

// NewUDPCluster starts a fabric over real UDP sockets on loopback: one
// socket per host plus a software switch performing barrier aggregation in
// the 48-bit wire format. Message Data must be []byte (it crosses real
// sockets). Stop it with Close.
func NewUDPCluster(cfg LiveConfig) (*Live, error) {
	ucfg := udpnet.DefaultConfig(cfg.Hosts, cfg.ProcsPerHost)
	if cfg.BeaconInterval > 0 {
		ucfg.BeaconInterval = cfg.BeaconInterval
	}
	ucfg.LossRate = cfg.LossRate
	c, err := udpnet.Start(ucfg)
	if err != nil {
		return nil, err
	}
	return &Live{
		np: c.NumProcs(),
		send: func(p int, reliable bool, msgs []Message) error {
			if reliable {
				return c.Proc(p).SendReliable(msgs)
			}
			return c.Proc(p).Send(msgs)
		},
		deliver: func(p int, fn func(core.Delivery)) { c.Proc(p).OnDeliver(fn) },
		stop:    c.Close,
	}, nil
}

// NumProcesses returns the process count.
func (l *Live) NumProcesses() int { return l.np }

// OnDeliver installs process p's delivery callback. Callbacks run on the
// fabric's internal goroutine; hand heavy work off.
func (l *Live) OnDeliver(p int, fn func(Delivery)) { l.deliver(p, fn) }

// UnreliableSend issues a best-effort scattering from process p.
func (l *Live) UnreliableSend(p int, msgs []Message) error { return l.send(p, false, msgs) }

// ReliableSend issues a reliable scattering from process p.
func (l *Live) ReliableSend(p int, msgs []Message) error { return l.send(p, true, msgs) }

// Close shuts the fabric down.
func (l *Live) Close() { l.stop() }
