package onepipe

import (
	"sync"
	"time"

	"onepipe/internal/core"
	"onepipe/internal/livenet"
	"onepipe/internal/udpnet"
)

// Live is a real-time 1Pipe fabric: the same protocol state machines as
// the simulated Cluster, but running on wall-clock time — either over
// in-process channels or over real UDP sockets on loopback. Use it to
// embed 1Pipe semantics in an actual program rather than an experiment.
// It satisfies Fabric, so code written against Process handles runs
// unchanged on the simulator and both live substrates.
type Live struct {
	np    int
	make  func(p int) procBackend
	stop  func()
	join  func() (int, error)
	drain func(host int) error
	nproc func() int

	mu      sync.Mutex
	handles []*Process
	once    sync.Once
}

// LiveConfig sizes a real-time fabric.
type LiveConfig struct {
	Hosts        int
	ProcsPerHost int
	// BeaconInterval is T_beacon in wall-clock time (default 1 ms —
	// coarse enough for OS timers).
	BeaconInterval time.Duration
	// LossRate injects loss at the software switch.
	//
	// Deprecated: use Impair with an Impairment{Loss: rate}. A nonzero
	// LossRate takes precedence over the impairment's uniform Loss.
	LossRate float64
	// Impair degrades data-plane packets at the software switch with the
	// composable model (loss, burst loss, jitter, extra delay). Both live
	// fabrics honor it.
	Impair *Impairment
	// Seed makes injected loss reproducible; zero draws from the wall
	// clock.
	Seed int64
	// BatchWindow overrides the send-side frame-coalescing window
	// (default 1 us).
	BatchWindow time.Duration
	// DisableBatching turns send-side frame coalescing off entirely.
	DisableBatching bool
}

// endpointOverride translates the LiveConfig batching knobs into a
// lib1pipe endpoint override, or nil when the defaults stand.
func (cfg LiveConfig) endpointOverride() *core.Config {
	if cfg.BatchWindow <= 0 && !cfg.DisableBatching {
		return nil
	}
	e := core.DefaultConfig()
	if cfg.BatchWindow > 0 {
		e.BatchWindow = Timestamp(cfg.BatchWindow)
	}
	e.DisableBatching = cfg.DisableBatching
	return &e
}

// liveBackend wires a Process handle to the in-process fabric: callback
// registration hops onto the event loop, sends return ErrClosed-wrapped
// errors when racing Close.
type liveBackend struct {
	n *livenet.Net
	p int
}

func (b liveBackend) id() ProcID { return ProcID(b.p) }
func (b liveBackend) send(msgs []Message, o core.SendOptions) error {
	return b.n.SendOpts(b.p, msgs, o)
}
func (b liveBackend) setOnDeliver(fn func(Delivery)) {
	b.n.Do(func() { b.n.Proc(b.p).OnDeliver = fn })
}
func (b liveBackend) setOnDeliverBatch(fn func([]Delivery)) {
	b.n.Do(func() { b.n.Proc(b.p).OnDeliverBatch = fn })
}
func (b liveBackend) setOnSendFail(fn func(SendFailure)) {
	b.n.Do(func() { b.n.Proc(b.p).OnSendFail = fn })
}
func (b liveBackend) setOnProcFail(fn func(ProcID, Timestamp)) {
	b.n.Do(func() { b.n.Proc(b.p).OnProcFail = fn })
}
func (b liveBackend) now() Timestamp { return b.n.Now() }

// NewLiveCluster starts an in-process real-time fabric (goroutines and
// channels). Stop it with Close.
func NewLiveCluster(cfg LiveConfig) *Live {
	lcfg := livenet.DefaultConfig(cfg.Hosts, cfg.ProcsPerHost)
	if cfg.BeaconInterval > 0 {
		lcfg.BeaconInterval = cfg.BeaconInterval
	}
	lcfg.LossRate = cfg.LossRate
	lcfg.Seed = cfg.Seed
	lcfg.Impair = cfg.Impair
	lcfg.Endpoint = cfg.endpointOverride()
	n := livenet.New(lcfg)
	return &Live{
		np:    n.NumProcs(),
		make:  func(p int) procBackend { return liveBackend{n: n, p: p} },
		stop:  n.Stop,
		join:  func() (int, error) { return n.Join(), nil },
		drain: n.Drain,
		nproc: n.NumProcs,
	}
}

// udpBackend wires a Process handle to the UDP fabric's ProcHandle.
type udpBackend struct {
	c *udpnet.Cluster
	p int
}

func (b udpBackend) id() ProcID { return ProcID(b.p) }
func (b udpBackend) send(msgs []Message, o core.SendOptions) error {
	return b.c.Proc(b.p).SendOpts(msgs, o)
}
func (b udpBackend) setOnDeliver(fn func(Delivery))        { b.c.Proc(b.p).OnDeliver(fn) }
func (b udpBackend) setOnDeliverBatch(fn func([]Delivery)) { b.c.Proc(b.p).OnDeliverBatch(fn) }
func (b udpBackend) setOnSendFail(fn func(SendFailure))    { b.c.Proc(b.p).OnSendFail(fn) }
func (b udpBackend) setOnProcFail(fn func(ProcID, Timestamp)) {
	b.c.Proc(b.p).OnProcFail(fn)
}
func (b udpBackend) now() Timestamp { return b.c.Now() }

// NewUDPCluster starts a fabric over real UDP sockets on loopback: one
// socket per host plus a software switch performing barrier aggregation in
// the 48-bit wire format. Message Data must be []byte (it crosses real
// sockets). Stop it with Close.
func NewUDPCluster(cfg LiveConfig) (*Live, error) {
	ucfg := udpnet.DefaultConfig(cfg.Hosts, cfg.ProcsPerHost)
	if cfg.BeaconInterval > 0 {
		ucfg.BeaconInterval = cfg.BeaconInterval
	}
	ucfg.LossRate = cfg.LossRate
	ucfg.Seed = cfg.Seed
	ucfg.Impair = cfg.Impair
	ucfg.Endpoint = cfg.endpointOverride()
	c, err := udpnet.Start(ucfg)
	if err != nil {
		return nil, err
	}
	return &Live{
		np:    c.NumProcs(),
		make:  func(p int) procBackend { return udpBackend{c: c, p: p} },
		stop:  c.Close,
		join:  c.Join,
		drain: c.Drain,
		nproc: c.NumProcs,
	}, nil
}

// NumProcesses returns the process count.
func (l *Live) NumProcesses() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.np
}

// Join grows the running fabric by one host and returns its index. On the
// in-process fabric the host is live on return; on the UDP fabric it has
// registered with the software switch and its uplink registers are seeded
// at the current aggregate, so the global barrier never regresses. The new
// host's processes appear at the tail of the process space.
func (l *Live) Join() (int, error) {
	hi, err := l.join()
	if err != nil {
		return -1, err
	}
	l.mu.Lock()
	l.np = l.nproc()
	l.mu.Unlock()
	return hi, nil
}

// Drain gracefully removes a host: new sends on it fail with ErrClosed,
// its send window flushes, then it leaves barrier aggregation and beacon
// relays for good. Blocks until the host has fully detached. No failure
// callbacks fire.
func (l *Live) Drain(host int) error { return l.drain(host) }

// Process returns the endpoint handle of process p. Handles are cached:
// repeated calls return the same *Process. Unlike the simulated Cluster, a
// Live handle's Poll queue fills from the fabric goroutine, so Poll and
// Pending are safe to call from any goroutine.
func (l *Live) Process(p int) *Process {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.handles) < l.np {
		grown := make([]*Process, l.np)
		copy(grown, l.handles)
		l.handles = grown
	}
	if l.handles[p] == nil {
		l.handles[p] = newProcess(l.make(p))
	}
	return l.handles[p]
}

// OnDeliver installs process p's delivery callback. Callbacks run on the
// fabric's internal goroutine; hand heavy work off.
//
// Deprecated: use Process(p).OnDeliver.
func (l *Live) OnDeliver(p int, fn func(Delivery)) { l.Process(p).OnDeliver(fn) }

// UnreliableSend issues a best-effort scattering from process p.
//
// Deprecated: use Process(p).Send.
func (l *Live) UnreliableSend(p int, msgs []Message) error { return l.Process(p).Send(msgs) }

// ReliableSend issues a reliable scattering from process p.
//
// Deprecated: use Process(p).Send with the Reliable option.
func (l *Live) ReliableSend(p int, msgs []Message) error {
	return l.Process(p).Send(msgs, Reliable())
}

// Close shuts the fabric down; subsequent sends fail with ErrClosed.
func (l *Live) Close() { l.once.Do(l.stop) }
