# Developer entry points. Everything is stdlib Go; no external deps.

GO ?= go

.PHONY: all build test race bench bench-json bench-gate slo slo-gate serve serve-gate results full-results fuzz examples vet chaos chaos-nightly elastic conflict scale

all: vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/livenet/ ./internal/udpnet/ ./internal/sim/
	$(GO) test -race ./internal/netsim/ -run 'TestParallel' -count=1

# One pass over every figure/table as Go benchmarks.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' .

# Refresh the committed performance-tracking report (engine scheduling,
# wire codec, simulated send path, e2e message rate). Add
# BENCH_ARGS=-bench-suite to also re-time the quick figure suite.
bench-json:
	$(GO) run ./cmd/onepipe-bench -bench-json -bench-out BENCH_core.json $(BENCH_ARGS)

# CI's perf smoke: re-measure engine events/sec and fail on a >10%
# regression against the committed BENCH_core.json.
bench-gate:
	$(GO) run ./cmd/onepipe-bench -bench-gate BENCH_core.json

# The SLO race: batched / unbatched / conflict-aware configs under one
# recorded trace + impairment profile, p50/p99/p999 (docs/workloads.md).
slo:
	$(GO) run ./cmd/onepipe-bench -fig slo

# CI's tail-latency smoke: re-run the quick SLO race and fail on delivery
# drift (the race is deterministic) or a >25% p99 regression against the
# committed BENCH_core.json.
slo-gate:
	$(GO) run ./cmd/onepipe-bench -slo-gate BENCH_core.json

# The serving tier: closed-loop clients driving KV / txn / SMR services
# on the Fabric API, plus the elastic Join/Drain timeline
# (docs/serving.md).
serve:
	$(GO) run ./cmd/onepipe-bench -fig serve

# CI's serving smoke: re-run the quick serve figure and fail on
# delivered-count drift (the tier is deterministic), a >25% p99
# regression against the committed BENCH_core.json, or a failed elastic
# recovery.
serve-gate:
	$(GO) run ./cmd/onepipe-bench -serve-gate BENCH_core.json

# Regenerate every figure/table at quick scale into results_quick.txt.
results:
	$(GO) run ./cmd/onepipe-bench -all | tee results_quick.txt

# The paper's full sweeps (up to 512 processes; takes a while).
full-results:
	$(GO) run ./cmd/onepipe-bench -all -full | tee results_full.txt

fuzz:
	$(GO) test ./internal/wire/ -fuzz FuzzDecode -fuzztime 30s
	$(GO) test ./internal/wire/ -fuzz FuzzDecodeCaptured -fuzztime 30s -run '^$$'
	$(GO) test ./internal/wire/ -fuzz FuzzTSOrdering -fuzztime 15s
	$(GO) test ./internal/core/ -fuzz FuzzAsmBufReorder -fuzztime 30s -run '^$$'

# Quick chaos sweep (the PR-gating budget; see docs/testing.md).
chaos:
	$(GO) test ./internal/chaos/ -run 'TestChaos$$' -seeds 50 -v

# The nightly budget: a long randomized sweep under the race detector.
# Failing seeds' reports land in CHAOS_ARTIFACT_DIR for upload/replay.
chaos-nightly:
	CHAOS_ARTIFACT_DIR=$${CHAOS_ARTIFACT_DIR:-chaos-artifacts} \
	$(GO) test ./internal/chaos/ -race -run 'TestChaos' -seeds 300 -timeout 120m -v

# Live-reconfiguration timeline: rolling host join + spine drain under
# load (docs/reconfiguration.md). The notes carry pass/fail verdicts.
elastic:
	$(GO) run ./cmd/onepipe-bench -fig elastic

# Conflict-aware ablation: relaxed (Generic Multicast) delivery raced
# against the unified total order across conflict rates (DESIGN.md #12).
conflict:
	$(GO) run ./cmd/onepipe-bench -fig conflict

# Sharded-engine scaling table: the 1024-host fat-tree workload swept
# over shard counts (docs/performance.md "Parallel simulation"). Real
# speedup needs free cores; the delivered/latency columns must be
# identical on every row regardless.
scale:
	$(GO) run ./cmd/onepipe-bench -fig scale

examples:
	@for ex in quickstart bank kvstore replication snapshot lockmanager; do \
		echo "=== examples/$$ex ==="; $(GO) run ./examples/$$ex || exit 1; done
