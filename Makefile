# Developer entry points. Everything is stdlib Go; no external deps.

GO ?= go

.PHONY: all build test race bench results full-results fuzz examples vet

all: vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/livenet/ ./internal/udpnet/

# One pass over every figure/table as Go benchmarks.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' .

# Regenerate every figure/table at quick scale into results_quick.txt.
results:
	$(GO) run ./cmd/onepipe-bench -all | tee results_quick.txt

# The paper's full sweeps (up to 512 processes; takes a while).
full-results:
	$(GO) run ./cmd/onepipe-bench -all -full | tee results_full.txt

fuzz:
	$(GO) test ./internal/wire/ -fuzz FuzzDecode -fuzztime 30s
	$(GO) test ./internal/wire/ -fuzz FuzzTSOrdering -fuzztime 15s

examples:
	@for ex in quickstart bank kvstore replication snapshot lockmanager; do \
		echo "=== examples/$$ex ==="; $(GO) run ./examples/$$ex || exit 1; done
