package onepipe

import "testing"

func TestPollQueueBuffersBeforeCallback(t *testing.T) {
	cl := NewCluster(Defaults())
	cl.Run(50 * Microsecond)
	cl.Process(0).UnreliableSend([]Message{{Dst: 3, Data: "a", Size: 16}})
	cl.Process(0).UnreliableSend([]Message{{Dst: 3, Data: "b", Size: 16}})
	cl.Run(300 * Microsecond)
	p := cl.Process(3)
	if p.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", p.Pending())
	}
	d1, ok1 := p.Poll()
	d2, ok2 := p.Poll()
	_, ok3 := p.Poll()
	if !ok1 || !ok2 || ok3 {
		t.Fatalf("poll oks = %v %v %v", ok1, ok2, ok3)
	}
	if d1.Data != "a" || d2.Data != "b" {
		t.Fatalf("poll order: %v then %v", d1.Data, d2.Data)
	}
	if d1.TS >= d2.TS {
		t.Fatal("poll order not by timestamp")
	}
}

func TestProcessHandleCached(t *testing.T) {
	cl := NewCluster(Defaults())
	if cl.Process(1) != cl.Process(1) {
		t.Fatal("Process handles not cached")
	}
}

func TestCallbackSupersedesQueue(t *testing.T) {
	cl := NewCluster(Defaults())
	got := 0
	cl.Process(2).OnDeliver(func(Delivery) { got++ })
	cl.Run(50 * Microsecond)
	cl.Process(0).UnreliableSend([]Message{{Dst: 2, Size: 16}})
	cl.Run(300 * Microsecond)
	if got != 1 {
		t.Fatalf("callback saw %d deliveries", got)
	}
	if cl.Process(2).Pending() != 0 {
		t.Fatal("delivery also queued despite callback")
	}
}

func TestUnifiedConfig(t *testing.T) {
	cfg := Defaults()
	cfg.Unified = true
	cl := NewCluster(cfg)
	cl.Run(50 * Microsecond)
	// Interleave classes; the unified poll stream must be ts-sorted.
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			cl.Process(0).UnreliableSend([]Message{{Dst: 5, Data: i, Size: 16}})
		} else {
			cl.Process(1).ReliableSend([]Message{{Dst: 5, Data: i, Size: 16}})
		}
		cl.Run(5 * Microsecond)
	}
	cl.Run(1 * Millisecond)
	var last Timestamp = -1
	n := 0
	for {
		d, ok := cl.Process(5).Poll()
		if !ok {
			break
		}
		if d.TS < last {
			t.Fatal("unified stream out of order")
		}
		last = d.TS
		n++
	}
	if n != 10 {
		t.Fatalf("delivered %d of 10", n)
	}
}

func TestTestbedTopology(t *testing.T) {
	cfg := Defaults()
	cfg.Topology = Testbed()
	cfg.ProcsPerHost = 2
	cl := NewCluster(cfg)
	if cl.NumProcesses() != 64 {
		t.Fatalf("NumProcesses = %d, want 64", cl.NumProcesses())
	}
	if cl.Now() != 0 {
		t.Fatal("fresh cluster not at time zero")
	}
}

func TestModeConfigPropagates(t *testing.T) {
	cfg := Defaults()
	cfg.Mode = ModeHostDelegate
	cl := NewCluster(cfg)
	if cl.Network().Cfg.Mode != ModeHostDelegate {
		t.Fatal("mode not propagated")
	}
}
