package onepipe

import (
	"sync"
	"testing"
	"time"
)

func TestLiveClusterDelivery(t *testing.T) {
	l := NewLiveCluster(LiveConfig{Hosts: 3, ProcsPerHost: 1})
	defer l.Close()
	var mu sync.Mutex
	var got []any
	l.OnDeliver(2, func(d Delivery) {
		mu.Lock()
		got = append(got, d.Data)
		mu.Unlock()
	})
	if err := l.UnreliableSend(0, []Message{{Dst: 2, Data: "rt", Size: 8}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("live delivery timed out")
}

func TestUDPClusterDelivery(t *testing.T) {
	l, err := NewUDPCluster(LiveConfig{Hosts: 3, ProcsPerHost: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var mu sync.Mutex
	okc := 0
	for _, p := range []int{1, 2} {
		l.OnDeliver(p, func(d Delivery) {
			if string(d.Data.([]byte)) == "udp" {
				mu.Lock()
				okc++
				mu.Unlock()
			}
		})
	}
	if err := l.ReliableSend(0, []Message{
		{Dst: 1, Data: []byte("udp"), Size: 3},
		{Dst: 2, Data: []byte("udp"), Size: 3},
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := okc
		mu.Unlock()
		if n == 2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("UDP scattering delivery timed out")
}
