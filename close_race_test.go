package onepipe_test

import (
	"errors"
	"sync"
	"testing"

	"onepipe"
)

func closedSendErrCheck(t *testing.T, name string, err error) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: send on closed fabric returned nil", name)
	}
	if !errors.Is(err, onepipe.ErrClosed) {
		t.Fatalf("%s: send on closed fabric returned %v, want errors.Is(err, ErrClosed)", name, err)
	}
}

// TestSendAfterCloseLive pins the shutdown contract on both live fabrics:
// a send issued after Close returns a typed ErrClosed instead of panicking
// or hanging on the dead event loop.
func TestSendAfterCloseLive(t *testing.T) {
	msg := []onepipe.Message{{Dst: 1, Data: []byte("late"), Size: 16}}

	l := onepipe.NewLiveCluster(onepipe.LiveConfig{Hosts: 2, ProcsPerHost: 1})
	l.Close()
	closedSendErrCheck(t, "livenet", l.Process(0).Send(msg))
	closedSendErrCheck(t, "livenet-reliable", l.Process(0).Send(msg, onepipe.Reliable()))

	u, err := onepipe.NewUDPCluster(onepipe.LiveConfig{Hosts: 2, ProcsPerHost: 1})
	if err != nil {
		t.Fatalf("udp cluster: %v", err)
	}
	u.Close()
	closedSendErrCheck(t, "udpnet", u.Process(0).Send(msg))
}

// TestSendRacingClose hammers Send from several goroutines while Close runs
// concurrently. Every send must either succeed or fail with a well-typed
// error; the original bug was a panic on the closed loop channel.
func TestSendRacingClose(t *testing.T) {
	for name, mk := range map[string]func() onepipe.Fabric{
		"livenet": func() onepipe.Fabric {
			return onepipe.NewLiveCluster(onepipe.LiveConfig{Hosts: 3, ProcsPerHost: 1})
		},
		"udpnet": func() onepipe.Fabric {
			u, err := onepipe.NewUDPCluster(onepipe.LiveConfig{Hosts: 3, ProcsPerHost: 1})
			if err != nil {
				t.Fatalf("udp cluster: %v", err)
			}
			return u
		},
	} {
		t.Run(name, func(t *testing.T) {
			fab := mk()
			msg := []onepipe.Message{{Dst: 2, Data: []byte("race"), Size: 16}}
			var wg sync.WaitGroup
			errs := make(chan error, 1024)
			start := make(chan struct{})
			for g := 0; g < 4; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					<-start
					for i := 0; i < 200; i++ {
						if err := fab.Process(g % 2).Send(msg); err != nil {
							select {
							case errs <- err:
							default:
							}
						}
					}
				}()
			}
			close(start)
			fab.Close()
			wg.Wait()
			close(errs)
			for err := range errs {
				if !errors.Is(err, onepipe.ErrClosed) {
					t.Fatalf("send racing Close returned %v, want ErrClosed", err)
				}
			}
		})
	}
}
