// Bank: distributed atomic operations (§2.2.3) with reliable scatterings.
//
// Account shards live on different processes. A transfer debits one shard
// and credits another with a single reliable scattering: both updates
// carry the same timestamp, every shard applies operations in timestamp
// order, and restricted failure atomicity guarantees all-or-nothing
// delivery. No locks, no two-phase commit in the application.
package main

import (
	"fmt"

	"onepipe"
)

type op struct {
	Account string
	Delta   int
}

func main() {
	cluster := onepipe.NewCluster(onepipe.Defaults())

	// Processes 1..4 are account shards; process 0 is the client.
	balances := map[string]int{"alice": 100, "bob": 100, "carol": 100, "dave": 100}
	owner := map[string]int{"alice": 1, "bob": 2, "carol": 3, "dave": 4}
	applied := make([]string, 0)
	for _, shard := range owner {
		shard := shard
		cluster.Process(shard).OnDeliver(func(d onepipe.Delivery) {
			o := d.Data.(op)
			balances[o.Account] += o.Delta
			applied = append(applied, fmt.Sprintf("shard %d: ts=%v %s %+d -> %d",
				shard, d.TS, o.Account, o.Delta, balances[o.Account]))
		})
	}
	cluster.Run(50 * onepipe.Microsecond)

	transfer := func(from, to string, amount int) {
		err := cluster.Process(0).Send([]onepipe.Message{
			{Dst: onepipe.ProcID(owner[from]), Data: op{from, -amount}, Size: 32},
			{Dst: onepipe.ProcID(owner[to]), Data: op{to, +amount}, Size: 32},
		}, onepipe.Reliable())
		if err != nil {
			panic(err)
		}
	}

	fmt.Println("issuing 4 concurrent transfers as atomic scatterings...")
	transfer("alice", "bob", 30)
	transfer("bob", "carol", 10)
	transfer("carol", "dave", 5)
	transfer("dave", "alice", 50)
	cluster.Run(1 * onepipe.Millisecond)

	fmt.Println("\napplied operations (timestamp order at each shard):")
	for _, a := range applied {
		fmt.Println("  " + a)
	}
	total := 0
	fmt.Println("\nfinal balances:")
	for _, acct := range []string{"alice", "bob", "carol", "dave"} {
		fmt.Printf("  %-6s %d\n", acct, balances[acct])
		total += balances[acct]
	}
	fmt.Printf("conservation check: total = %d (want 400)\n", total)
}
