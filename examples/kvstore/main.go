// KVStore: a miniature transactional key-value store over the public API
// (§7.3.1). Read-write transactions are single reliable scatterings, so
// every shard processes operations in timestamp order and transactions are
// serializable without locks. Read-only transactions ride best-effort
// 1Pipe and simply retry on loss.
package main

import (
	"fmt"

	"onepipe"
)

type kvOp struct {
	TxnID int
	Write bool
	Key   string
	Value string
}

func main() {
	cluster := onepipe.NewCluster(onepipe.Defaults())
	n := cluster.NumProcesses()

	// Every process is a shard; keys map to shards by a toy hash.
	shardOf := func(key string) onepipe.ProcID {
		h := 0
		for _, c := range key {
			h = h*31 + int(c)
		}
		return onepipe.ProcID(h % n)
	}
	stores := make([]map[string]string, n)
	var trace []string
	for i := 0; i < n; i++ {
		i := i
		stores[i] = make(map[string]string)
		cluster.Process(i).OnDeliver(func(d onepipe.Delivery) {
			o := d.Data.(kvOp)
			if o.Write {
				stores[i][o.Key] = o.Value
				trace = append(trace, fmt.Sprintf("shard %2d ts=%v txn%d SET %s=%s", i, d.TS, o.TxnID, o.Key, o.Value))
			} else {
				trace = append(trace, fmt.Sprintf("shard %2d ts=%v txn%d GET %s -> %q", i, d.TS, o.TxnID, o.Key, stores[i][o.Key]))
			}
		})
	}
	cluster.Run(50 * onepipe.Microsecond)

	// Transaction 1 (from process 0): write two keys atomically.
	cluster.Process(0).Send([]onepipe.Message{
		{Dst: shardOf("user:42"), Data: kvOp{1, true, "user:42", "ada"}, Size: 64},
		{Dst: shardOf("count"), Data: kvOp{1, true, "count", "1"}, Size: 64},
	}, onepipe.Reliable())
	// Transaction 2 (from process 5, concurrently): read both keys. Total
	// order guarantees it sees either none or both of txn 1's writes.
	cluster.Process(5).Send([]onepipe.Message{
		{Dst: shardOf("user:42"), Data: kvOp{2, false, "user:42", ""}, Size: 32},
		{Dst: shardOf("count"), Data: kvOp{2, false, "count", ""}, Size: 32},
	})
	cluster.Run(1 * onepipe.Millisecond)

	fmt.Println("operation trace (every shard applies in timestamp order):")
	for _, t := range trace {
		fmt.Println("  " + t)
	}
}
