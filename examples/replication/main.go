// Replication: §2.2.2's 1-RTT replication. A client scatters log entries
// directly to three replicas with best-effort 1Pipe; the network
// serializes concurrent clients, per-replica checksums certify agreement
// in the acknowledgment itself, and packet loss is repaired by
// sequence-gap-driven retransmission — all without a leader.
package main

import (
	"fmt"

	"onepipe"
	"onepipe/internal/netsim"
	"onepipe/internal/replication"
)

func main() {
	cfg := onepipe.Defaults()
	cfg.LossRate = 0.002 // a slightly lossy fabric, to show recovery
	cfg.Seed = 7
	cluster := onepipe.NewCluster(cfg)

	replicas := []onepipe.ProcID{5, 6, 7}
	group := replication.NewGroup(cluster.Core(), replicas, replication.DefaultConfig())

	// Two clients append concurrently.
	acked := 0
	for _, client := range []onepipe.ProcID{0, 1} {
		c := group.Client(client)
		client := client
		for i := 0; i < 25; i++ {
			i := i
			at := cluster.Now() + onepipe.Timestamp(50+i*4)*onepipe.Microsecond
			cluster.Network().Eng.At(at, func() {
				c.Append(fmt.Sprintf("c%d-e%d", client, i), 64, func(ok bool) {
					if ok {
						acked++
					}
				})
			})
		}
	}
	cluster.Run(20 * onepipe.Millisecond)

	fmt.Printf("acknowledged %d/50 appends (latency mean %.1fus, %d retransmits under %.1f%% loss)\n",
		acked, group.Stats.Latency.Mean(), group.Stats.Retransmits, cfg.LossRate*100)

	logs := make(map[netsim.ProcID][]replication.Entry)
	for _, r := range replicas {
		logs[r] = group.Log(r)
	}
	fmt.Printf("replica log lengths: %d / %d / %d\n",
		len(logs[5]), len(logs[6]), len(logs[7]))
	fmt.Printf("per-client sequences consistent on all replicas: %v\n", group.ClientConsistent())

	fmt.Println("\nfirst 8 entries on replica 5 (identical interleaving on the others):")
	for i, e := range logs[5] {
		if i == 8 {
			break
		}
		fmt.Printf("  ts=%-12v client=%d seq=%d %v\n", e.TS, e.Client, e.Seq, e.Data)
	}
}
