// Lockmanager: distributed mutual exclusion via state machine replication
// over reliable 1Pipe (§2.2.2). Every lock/unlock command is one
// scattering to three replicas; all replicas apply the commands in the
// same total order, so they compute identical grant sequences — Lamport's
// classic mutual-exclusion guarantee ("the resource is granted in the
// order the requests are made") with no leader and no per-command
// consensus round.
package main

import (
	"fmt"

	"onepipe"
	"onepipe/internal/netsim"
	"onepipe/internal/smr"
)

func main() {
	cluster := onepipe.NewCluster(onepipe.Defaults())
	replicas := []onepipe.ProcID{5, 6, 7}
	group := smr.NewGroup(cluster.Core(), replicas, func(netsim.ProcID) smr.StateMachine {
		return smr.NewLockManager()
	})
	eng := cluster.Network().Eng
	cluster.Run(50 * onepipe.Microsecond)

	// Four clients race for the same resource; each holds it for 15us.
	lm := group.SM(5).(*smr.LockManager)
	lm.OnGrant = func(ev smr.GrantEvent) {
		owner := ev.Owner
		fmt.Printf("granted %-8s to client %d at ts=%v\n", ev.Resource, owner, ev.TS)
		eng.After(15*onepipe.Microsecond, func() {
			group.Submit(owner, smr.LockCmd{Resource: ev.Resource, Owner: owner, Release: true}, 16)
		})
	}
	for _, client := range []onepipe.ProcID{0, 1, 2, 3} {
		client := client
		eng.At(eng.Now()+onepipe.Timestamp(60+client)*onepipe.Microsecond, func() {
			group.Submit(client, smr.LockCmd{Resource: "database", Owner: client}, 16)
		})
	}
	cluster.Run(2 * onepipe.Millisecond)

	// Verify all replicas computed the identical grant sequence.
	ref := group.SM(5).(*smr.LockManager).Grants
	same := true
	for _, r := range replicas[1:] {
		g := group.SM(r).(*smr.LockManager).Grants
		if len(g) != len(ref) {
			same = false
			break
		}
		for i := range g {
			if g[i].Owner != ref[i].Owner {
				same = false
			}
		}
	}
	fmt.Printf("\n%d grants; all %d replicas agree on the grant order: %v\n",
		len(ref), len(replicas), same)
}
