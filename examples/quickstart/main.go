// Quickstart: build a simulated 1Pipe cluster, scatter messages from
// several senders concurrently, and watch every receiver deliver them in
// the same (timestamp, sender) total order.
package main

import (
	"fmt"

	"onepipe"
)

func main() {
	cluster := onepipe.NewCluster(onepipe.Defaults())
	n := cluster.NumProcesses()
	fmt.Printf("deployed 1Pipe: %d processes on a 2-pod Clos fabric\n\n", n)

	// Every process records its deliveries.
	logs := make([][]string, n)
	for i := 0; i < n; i++ {
		i := i
		cluster.Process(i).OnDeliver(func(d onepipe.Delivery) {
			logs[i] = append(logs[i], fmt.Sprintf("ts=%-12v from=%d %v", d.TS, d.Src, d.Data))
		})
	}
	cluster.Run(50 * onepipe.Microsecond)

	// Three senders scatter concurrently; each scattering shares one
	// timestamp across all its destinations.
	for round := 0; round < 3; round++ {
		for _, sender := range []int{0, 3, 6} {
			var msgs []onepipe.Message
			for dst := 0; dst < n; dst++ {
				if dst == sender {
					continue
				}
				msgs = append(msgs, onepipe.Message{
					Dst:  onepipe.ProcID(dst),
					Data: fmt.Sprintf("r%d/p%d", round, sender),
					Size: 64,
				})
			}
			if err := cluster.Process(sender).Send(msgs); err != nil {
				panic(err)
			}
		}
		cluster.Run(10 * onepipe.Microsecond)
	}
	cluster.Run(300 * onepipe.Microsecond)

	fmt.Println("deliveries at process 1 (total order):")
	for _, l := range logs[1] {
		fmt.Println("  " + l)
	}
	fmt.Println("\ndeliveries at process 7 (same order, same timestamps):")
	for _, l := range logs[7] {
		fmt.Println("  " + l)
	}

	// The two logs agree on the relative order of every common message —
	// that is 1Pipe's total order property.
	same := 0
	for i := 0; i < len(logs[1]) && i < len(logs[7]); i++ {
		if logs[1][i] == logs[7][i] {
			same++
		}
	}
	fmt.Printf("\n%d/%d positions identical across the two receivers\n", same, len(logs[1]))
}
