// Snapshot: a consistent distributed snapshot via a timestamp broadcast
// (§2.2.4). Counters on every process mutate continuously through ordered
// transfers; a snapshot is just one scattering — every process records its
// state when the marker is delivered, and because all deliveries are
// totally ordered, the recorded states form a consistent cut: the sum of
// all counters is exact despite in-flight transfers.
package main

import (
	"fmt"

	"onepipe"
)

type transfer struct{ Amount int }
type marker struct{ ID int }

func main() {
	cluster := onepipe.NewCluster(onepipe.Defaults())
	n := cluster.NumProcesses()

	counters := make([]int, n)
	for i := range counters {
		counters[i] = 100
	}
	snapshots := make(map[int][]int)
	for i := 0; i < n; i++ {
		i := i
		cluster.Process(i).OnDeliver(func(d onepipe.Delivery) {
			switch m := d.Data.(type) {
			case transfer:
				counters[i] += m.Amount
			case marker:
				snap := snapshots[m.ID]
				if snap == nil {
					snap = make([]int, n)
					for j := range snap {
						snap[j] = -1
					}
				}
				snap[i] = counters[i]
				snapshots[m.ID] = snap
			}
		})
	}
	cluster.Run(50 * onepipe.Microsecond)

	// Continuous randomized transfers: each moves value from one counter
	// to another (conserving the global sum of 100*n) as a scattering.
	rng := cluster.Network().Eng.Rand()
	step := func() {
		for k := 0; k < 6; k++ {
			from := rng.Intn(n)
			to := (from + 1 + rng.Intn(n-1)) % n
			amt := 1 + rng.Intn(20)
			cluster.Process(from).Send([]onepipe.Message{
				{Dst: onepipe.ProcID(from), Data: transfer{-amt}, Size: 16},
				{Dst: onepipe.ProcID(to), Data: transfer{+amt}, Size: 16},
			})
		}
	}

	// Interleave transfers and two snapshots.
	for round := 0; round < 10; round++ {
		step()
		if round == 3 || round == 7 {
			id := round
			var msgs []onepipe.Message
			for q := 0; q < n; q++ {
				msgs = append(msgs, onepipe.Message{Dst: onepipe.ProcID(q), Data: marker{id}, Size: 8})
			}
			cluster.Process(0).Send(msgs)
		}
		cluster.Run(20 * onepipe.Microsecond)
	}
	cluster.Run(500 * onepipe.Microsecond)

	want := 100 * n
	for _, id := range []int{3, 7} {
		snap := snapshots[id]
		sum, complete := 0, true
		for _, v := range snap {
			if v < 0 {
				complete = false
			}
			sum += v
		}
		fmt.Printf("snapshot %d: complete=%v sum=%d (want %d) values=%v\n", id, complete, sum, want, snap)
	}
	fmt.Println("\nthe snapshot marker shares one timestamp, so every process cut its state")
	fmt.Println("at the same point of the total order — the sums are exact.")
}
