// Package onepipe is a Go implementation of 1Pipe, the causally and
// totally ordered communication abstraction of "1Pipe: Scalable Total
// Order Communication in Data Center Networks" (SIGCOMM 2021).
//
// 1Pipe lets every receiver in a data center deliver messages from all
// senders in one consistent (timestamp, sender) total order. Its unit of
// transmission is the scattering: a group of messages to different
// destinations that occupy the same position in the total order. Two
// service classes are provided:
//
//   - Best effort: delivered in 0.5 RTT plus barrier wait; lost messages
//     are detected (send-failure callback) but never retransmitted.
//   - Reliable: two-phase commit with in-network commit-barrier
//     aggregation; delivery is guaranteed unless a participant fails, in
//     which case the whole scattering is recalled (restricted failure
//     atomicity).
//
// The package deploys a complete 1Pipe fabric over a deterministic
// discrete-event data center simulation: a multi-rooted Clos topology
// whose switches aggregate barrier timestamps (the paper's programmable
// chip, switch-CPU and host-delegate incarnations), PTP-style synchronized
// host clocks, a UD-style transport with DCTCP congestion control, and a
// Raft-replicated failure controller.
//
// Quickstart:
//
//	cluster := onepipe.NewCluster(onepipe.Defaults())
//	p0, p1 := cluster.Process(0), cluster.Process(1)
//	p1.OnDeliver(func(d onepipe.Delivery) {
//		fmt.Printf("t=%v from=%d %v\n", d.TS, d.Src, d.Data)
//	})
//	p0.UnreliableSend([]onepipe.Message{{Dst: 1, Data: "hello", Size: 64}})
//	cluster.Run(200 * onepipe.Microsecond)
package onepipe

import (
	"onepipe/internal/controller"
	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// Timestamp is a 1Pipe timestamp: nanoseconds of synchronized host time.
type Timestamp = sim.Time

// Convenient duration units for Run and configuration fields.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// ProcID identifies a 1Pipe process.
type ProcID = netsim.ProcID

// Message is one element of a scattering.
type Message = core.Message

// Delivery is a message delivered in total order.
type Delivery = core.Delivery

// SendFailure reports a message that will not be delivered.
type SendFailure = core.SendFailure

// Topology sizes the simulated Clos network.
type Topology = topology.ClosConfig

// Mode selects the in-network processing incarnation.
type Mode = netsim.Mode

// Incarnations of in-network barrier aggregation (§6.2).
const (
	ModeChip         = netsim.ModeChip
	ModeSwitchCPU    = netsim.ModeSwitchCPU
	ModeHostDelegate = netsim.ModeHostDelegate
)

// ErrSendBufferFull is returned by sends when the host's wait queue is at
// capacity.
var ErrSendBufferFull = core.ErrSendBufferFull

// Config assembles a 1Pipe deployment.
type Config struct {
	// Topology is the Clos network to simulate; Testbed() is the paper's
	// 32-server, 10-switch fabric.
	Topology Topology
	// ProcsPerHost is the number of 1Pipe processes per server.
	ProcsPerHost int
	// Mode selects the switch incarnation (default ModeChip).
	Mode Mode
	// BeaconInterval is T_beacon (default 3 us).
	BeaconInterval Timestamp
	// LossRate is the per-link packet corruption probability.
	LossRate float64
	// Seed makes the run reproducible.
	Seed int64
	// WithController deploys the Raft-replicated failure controller and
	// gates the commit plane on its Resume step. Required for reliable
	// 1Pipe's restricted failure atomicity under crashes.
	WithController bool
	// Unified delivers both service classes in a single cross-class total
	// order (see internal/core.DeliverUnified).
	Unified bool
	// Net, when non-nil, overrides the derived network configuration
	// entirely (expert knob used by the experiment harness).
	Net *netsim.Config
	// Endpoint, when non-nil, overrides the lib1pipe endpoint
	// configuration.
	Endpoint *core.Config
}

// Testbed returns the paper's evaluation topology.
func Testbed() Topology { return topology.Testbed() }

// Defaults returns a small two-pod cluster configuration suitable for
// examples and tests.
func Defaults() Config {
	return Config{
		Topology:     Topology{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 2},
		ProcsPerHost: 1,
		Mode:         ModeChip,
		Seed:         1,
	}
}

// Cluster is a deployed 1Pipe fabric plus its simulated data center.
type Cluster struct {
	cfg     Config
	net     *netsim.Network
	core    *core.Cluster
	ctrl    *controller.Controller
	handles []*Process
}

// NewCluster builds the network, deploys lib1pipe on every host, and (if
// configured) starts the replicated controller.
func NewCluster(cfg Config) *Cluster {
	ncfg := netsim.DefaultConfig(cfg.Topology, cfg.ProcsPerHost)
	if cfg.Net != nil {
		ncfg = *cfg.Net
	} else {
		ncfg.Mode = cfg.Mode
		ncfg.LossRate = cfg.LossRate
		if cfg.BeaconInterval > 0 {
			ncfg.BeaconInterval = cfg.BeaconInterval
		}
		if cfg.Seed != 0 {
			ncfg.Seed = cfg.Seed
		}
		ncfg.ControllerManagedCommit = cfg.WithController
	}
	ecfg := core.DefaultConfig()
	if cfg.Endpoint != nil {
		ecfg = *cfg.Endpoint
	}
	if cfg.Unified {
		ecfg.Mode = core.DeliverUnified
	}
	n := netsim.New(ncfg)
	cl := core.Deploy(n, ecfg)
	c := &Cluster{cfg: cfg, net: n, core: cl}
	if cfg.WithController {
		c.ctrl = controller.New(n, cl, controller.DefaultConfig())
		c.ctrl.Raft.WaitLeader(50 * Millisecond)
	}
	// Buffer every process's deliveries for Poll until the application
	// registers a callback.
	c.handles = make([]*Process, len(cl.Procs))
	for p := range cl.Procs {
		c.Process(p)
	}
	return c
}

// NumProcesses returns the number of deployed processes.
func (c *Cluster) NumProcesses() int { return len(c.core.Procs) }

// Process returns the endpoint of process p. Handles are cached: repeated
// calls return the same *Process.
func (c *Cluster) Process(p int) *Process {
	if c.handles == nil {
		c.handles = make([]*Process, len(c.core.Procs))
	}
	if c.handles[p] == nil {
		h := &Process{proc: c.core.Procs[p], cluster: c}
		h.ensureQueue() // buffer deliveries until a callback is registered
		c.handles[p] = h
	}
	return c.handles[p]
}

// Run advances the simulated data center by d.
func (c *Cluster) Run(d Timestamp) { c.net.Eng.RunFor(d) }

// Now returns the current simulation time.
func (c *Cluster) Now() Timestamp { return c.net.Eng.Now() }

// Network exposes the underlying simulated network (failure injection,
// statistics) for experiments.
func (c *Cluster) Network() *netsim.Network { return c.net }

// Core exposes the deployed lib1pipe runtimes.
func (c *Cluster) Core() *core.Cluster { return c.core }

// Controller returns the failure controller, or nil if not deployed.
func (c *Cluster) Controller() *controller.Controller { return c.ctrl }

// KillHost crash-fails a server; with a controller deployed, reliable
// 1Pipe runs the full Detect/Determine/Broadcast/Discard/Recall/Callback/
// Resume pipeline of §5.2.
func (c *Cluster) KillHost(host int) {
	c.core.Hosts[host].Stop()
	c.net.G.KillNode(c.net.G.Host(host))
}

// Process is one 1Pipe endpoint, exposing the Table 1 API.
type Process struct {
	proc    *core.Proc
	cluster *Cluster
	queue   *[]Delivery
}

// ID returns the process identifier.
func (p *Process) ID() ProcID { return p.proc.ID }

// UnreliableSend issues a best-effort scattering
// (onepipe_unreliable_send).
func (p *Process) UnreliableSend(msgs []Message) error { return p.proc.Send(msgs) }

// ReliableSend issues a reliable scattering (onepipe_reliable_send).
func (p *Process) ReliableSend(msgs []Message) error { return p.proc.SendReliable(msgs) }

// OnDeliver registers the delivery callback; messages arrive in
// (timestamp, sender) total order (the push-style equivalent of
// onepipe_unreliable_recv / onepipe_reliable_recv). Registering a callback
// supersedes the Poll queue.
func (p *Process) OnDeliver(fn func(Delivery)) { p.proc.OnDeliver = fn }

// Poll returns the next delivery in total order, pull-style — the direct
// analogue of Table 1's recv calls. Deliveries accumulate in an internal
// queue while neither OnDeliver nor Poll has consumed them.
func (p *Process) Poll() (Delivery, bool) {
	p.ensureQueue()
	q := *p.queue
	if len(q) == 0 {
		return Delivery{}, false
	}
	d := q[0]
	*p.queue = q[1:]
	return d, true
}

// Pending reports how many deliveries are queued for Poll.
func (p *Process) Pending() int {
	p.ensureQueue()
	return len(*p.queue)
}

func (p *Process) ensureQueue() {
	if p.queue != nil {
		return
	}
	q := &[]Delivery{}
	p.queue = q
	p.proc.OnDeliver = func(d Delivery) { *q = append(*q, d) }
}

// OnSendFail registers the send-failure callback
// (onepipe_send_fail_callback).
func (p *Process) OnSendFail(fn func(SendFailure)) { p.proc.OnSendFail = fn }

// OnProcFail registers the process-failure callback
// (onepipe_proc_fail_callback).
func (p *Process) OnProcFail(fn func(proc ProcID, ts Timestamp)) { p.proc.OnProcFail = fn }

// Timestamp returns the host's current synchronized timestamp
// (onepipe_get_timestamp).
func (p *Process) Timestamp() Timestamp { return p.proc.Timestamp() }
