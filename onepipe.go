// Package onepipe is a Go implementation of 1Pipe, the causally and
// totally ordered communication abstraction of "1Pipe: Scalable Total
// Order Communication in Data Center Networks" (SIGCOMM 2021).
//
// 1Pipe lets every receiver in a data center deliver messages from all
// senders in one consistent (timestamp, sender) total order. Its unit of
// transmission is the scattering: a group of messages to different
// destinations that occupy the same position in the total order. Two
// service classes are provided:
//
//   - Best effort: delivered in 0.5 RTT plus barrier wait; lost messages
//     are detected (send-failure callback) but never retransmitted.
//   - Reliable: two-phase commit with in-network commit-barrier
//     aggregation; delivery is guaranteed unless a participant fails, in
//     which case the whole scattering is recalled (restricted failure
//     atomicity).
//
// The package deploys a complete 1Pipe fabric over a deterministic
// discrete-event data center simulation: a multi-rooted Clos topology
// whose switches aggregate barrier timestamps (the paper's programmable
// chip, switch-CPU and host-delegate incarnations), PTP-style synchronized
// host clocks, a UD-style transport with DCTCP congestion control, and a
// Raft-replicated failure controller.
//
// Quickstart:
//
//	cluster := onepipe.NewCluster(onepipe.Defaults())
//	p0, p1 := cluster.Process(0), cluster.Process(1)
//	p1.OnDeliver(func(d onepipe.Delivery) {
//		fmt.Printf("t=%v from=%d %v\n", d.TS, d.Src, d.Data)
//	})
//	p0.Send([]onepipe.Message{{Dst: 1, Data: "hello", Size: 64}})
//	cluster.Run(200 * onepipe.Microsecond)
//
// The same Process API runs unchanged on the real-time fabrics
// (NewLiveCluster, NewUDPCluster); the Fabric interface abstracts over all
// three deployments.
package onepipe

import (
	"fmt"
	"sync"

	"onepipe/internal/controller"
	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/reconfig"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// Timestamp is a 1Pipe timestamp: nanoseconds of synchronized host time.
type Timestamp = sim.Time

// Convenient duration units for Run and configuration fields.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// ProcID identifies a 1Pipe process.
type ProcID = netsim.ProcID

// Message is one element of a scattering.
type Message = core.Message

// Delivery is a message delivered in total order.
type Delivery = core.Delivery

// SendFailure reports a message that will not be delivered.
type SendFailure = core.SendFailure

// Topology sizes the simulated Clos network.
type Topology = topology.ClosConfig

// Mode selects the in-network processing incarnation.
type Mode = netsim.Mode

// Incarnations of in-network barrier aggregation (§6.2).
const (
	ModeChip         = netsim.ModeChip
	ModeSwitchCPU    = netsim.ModeSwitchCPU
	ModeHostDelegate = netsim.ModeHostDelegate
)

// Impairment describes composable link degradations — uniform loss,
// jitter, Gilbert-Elliott burst loss, duty-cycle outages, reordering, RTT
// classes. See netsim.Impairment for the determinism contract.
type Impairment = netsim.Impairment

// ImpairmentProfile attaches Impairments to the simulated fabric: per
// link, per link class, or fabric-wide (most-specific-wins).
type ImpairmentProfile = netsim.Profile

// ErrSendBufferFull is returned by sends when the host's wait queue is at
// capacity.
var ErrSendBufferFull = core.ErrSendBufferFull

// ErrBackpressure matches (errors.Is) send errors returned when a
// connection's doorbell queue is full; the concrete *BackpressureError
// carries the earliest time a retry can drain.
var ErrBackpressure = core.ErrBackpressure

// BackpressureError is the concrete backpressure send error.
type BackpressureError = core.BackpressureError

// ErrClosed matches (errors.Is) send errors returned after a fabric or
// host has been closed.
var ErrClosed = core.ErrClosed

// Fabric is the deployment-independent surface of a running 1Pipe fabric,
// satisfied by the simulated *Cluster and the real-time *Live.
type Fabric interface {
	// Process returns the endpoint handle of process p; handles are
	// cached, so repeated calls return the same *Process.
	Process(p int) *Process
	// NumProcesses returns the number of deployed processes.
	NumProcesses() int
	// Join grows the running fabric by one host through an epoch-based
	// live reconfiguration and returns the new host's index once it is
	// active. The host's processes appear at the tail of the process
	// space; every timestamp they emit exceeds the join epoch, so no
	// receiver's delivered barrier ever regresses.
	Join() (int, error)
	// Drain gracefully removes a host from the running fabric: new sends
	// on it fail with ErrClosed, its send window flushes, then it leaves
	// routing and barrier aggregation for good. Unlike a crash, a drain
	// assigns no failure timestamp, recalls nothing, and fires no failure
	// callbacks.
	Drain(host int) error
	// Close shuts the fabric down; subsequent sends fail with ErrClosed.
	Close()
}

var (
	_ Fabric = (*Cluster)(nil)
	_ Fabric = (*Live)(nil)
)

// SendOption refines one Send call.
type SendOption func(*core.SendOptions)

// Reliable selects reliable 1Pipe: two-phase commit, guaranteed delivery
// unless a participant fails (then the whole scattering is recalled).
func Reliable() SendOption {
	return func(o *core.SendOptions) { o.Reliable = true }
}

// Batched overrides the fabric's frame-coalescing window for this
// scattering: its fragments may wait up to window for more
// same-destination traffic to share a wire frame with.
func Batched(window Timestamp) SendOption {
	return func(o *core.SendOptions) { o.BatchWindow = window }
}

// Unbatched exempts this scattering from frame coalescing; it goes to the
// wire immediately (at the cost of one packet per message).
func Unbatched() SendOption {
	return func(o *core.SendOptions) { o.NoBatch = true }
}

// Conflicts declares the scattering's conflict class for conflict-aware
// fabrics (Config.ConflictAware): scatterings tagged with any nonzero key
// stay in the cross-class total order, while untagged scatterings deliver as
// soon as they are locally stable — best-effort in 0.5 RTT, reliable at the
// commit barrier — outside that order (Generic Multicast's conflict
// relation, coarsened to "tagged conflicts with tagged"; see DESIGN.md).
// key 0 is identical to omitting the option; other delivery modes ignore
// the tag entirely.
func Conflicts(key uint32) SendOption {
	return func(o *core.SendOptions) { o.ConflictKey = key }
}

// Config assembles a 1Pipe deployment.
type Config struct {
	// Topology is the Clos network to simulate; Testbed() is the paper's
	// 32-server, 10-switch fabric.
	Topology Topology
	// ProcsPerHost is the number of 1Pipe processes per server.
	ProcsPerHost int
	// Mode selects the switch incarnation (default ModeChip).
	Mode Mode
	// BeaconInterval is T_beacon (default 3 us).
	BeaconInterval Timestamp
	// LossRate is the per-link packet corruption probability.
	//
	// Deprecated: use Impair with netsim.UniformLoss(rate). A nonzero
	// LossRate takes precedence over a profile's uniform Loss component.
	LossRate float64
	// Impair degrades simulated links with composable impairment profiles
	// (loss, jitter, burst loss, RTT classes) — the structured replacement
	// for the LossRate knob.
	Impair *ImpairmentProfile
	// Seed makes the run reproducible.
	Seed int64
	// WithController deploys the Raft-replicated failure controller and
	// gates the commit plane on its Resume step. Required for reliable
	// 1Pipe's restricted failure atomicity under crashes.
	WithController bool
	// Unified delivers both service classes in a single cross-class total
	// order (see internal/core.DeliverUnified).
	Unified bool
	// ConflictAware relaxes the unified order per declared conflicts: only
	// scatterings sent with the Conflicts option keep the full barrier
	// wait; untagged ones deliver when locally stable (see
	// internal/core.DeliverConflictAware). Takes precedence over Unified.
	ConflictAware bool
	// Shards splits the simulation engine into per-pod shard engines driven
	// in deterministic lockstep (netsim.Config.Shards): results are
	// byte-identical at any shard count. 0 or 1 keeps the single engine.
	Shards int
	// BatchWindow overrides how long a partial multi-message wire frame
	// waits for more same-destination traffic (default 1 us simulated).
	BatchWindow Timestamp
	// DisableBatching turns send-side frame coalescing off entirely.
	DisableBatching bool
	// Net, when non-nil, overrides the derived network configuration
	// entirely (expert knob used by the experiment harness).
	Net *netsim.Config
	// Endpoint, when non-nil, overrides the lib1pipe endpoint
	// configuration.
	Endpoint *core.Config
}

// Testbed returns the paper's evaluation topology.
func Testbed() Topology { return topology.Testbed() }

// Defaults returns a small two-pod cluster configuration suitable for
// examples and tests.
func Defaults() Config {
	return Config{
		Topology:     Topology{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 2},
		ProcsPerHost: 1,
		Mode:         ModeChip,
		Seed:         1,
	}
}

// Cluster is a deployed 1Pipe fabric plus its simulated data center.
type Cluster struct {
	cfg     Config
	net     *netsim.Network
	core    *core.Cluster
	ctrl    *controller.Controller
	handles []*Process
	elastic *reconfig.Engine
	joins   int
}

// NewCluster builds the network, deploys lib1pipe on every host, and (if
// configured) starts the replicated controller.
func NewCluster(cfg Config) *Cluster {
	ncfg := netsim.DefaultConfig(cfg.Topology, cfg.ProcsPerHost)
	if cfg.Net != nil {
		ncfg = *cfg.Net
	} else {
		ncfg.Mode = cfg.Mode
		ncfg.LossRate = cfg.LossRate
		ncfg.Impair = cfg.Impair
		if cfg.BeaconInterval > 0 {
			ncfg.BeaconInterval = cfg.BeaconInterval
		}
		if cfg.Seed != 0 {
			ncfg.Seed = cfg.Seed
		}
		ncfg.ControllerManagedCommit = cfg.WithController
		ncfg.Shards = cfg.Shards
	}
	ecfg := core.DefaultConfig()
	if cfg.Endpoint != nil {
		ecfg = *cfg.Endpoint
	}
	if cfg.Unified {
		ecfg.Mode = core.DeliverUnified
	}
	if cfg.ConflictAware {
		ecfg.Mode = core.DeliverConflictAware
	}
	if cfg.BatchWindow > 0 {
		ecfg.BatchWindow = cfg.BatchWindow
	}
	if cfg.DisableBatching {
		ecfg.DisableBatching = true
	}
	n := netsim.New(ncfg)
	cl := core.Deploy(n, ecfg)
	c := &Cluster{cfg: cfg, net: n, core: cl}
	if cfg.WithController {
		c.ctrl = controller.New(n, cl, controller.DefaultConfig())
		c.ctrl.Raft.WaitLeader(50 * Millisecond)
	}
	// Buffer every process's deliveries for Poll until the application
	// registers a callback.
	c.handles = make([]*Process, len(cl.Procs))
	for p := range cl.Procs {
		c.Process(p)
	}
	return c
}

// NumProcesses returns the number of deployed processes.
func (c *Cluster) NumProcesses() int { return len(c.core.Procs) }

// Process returns the endpoint of process p. Handles are cached: repeated
// calls return the same *Process.
func (c *Cluster) Process(p int) *Process {
	if len(c.handles) < len(c.core.Procs) {
		grown := make([]*Process, len(c.core.Procs))
		copy(grown, c.handles)
		c.handles = grown
	}
	if c.handles[p] == nil {
		c.handles[p] = newProcess(simBackend{proc: c.core.Procs[p]})
	}
	return c.handles[p]
}

// Reconfig returns the live-reconfiguration engine, built on first use over
// the deployed network, runtimes, and controller (if any). Switch add/drain
// and explicitly placed host joins go through it directly; Join and Drain
// are the placement-free shorthands.
func (c *Cluster) Reconfig() *reconfig.Engine {
	if c.elastic == nil {
		c.elastic = reconfig.New(c.net, c.core, c.ctrl, reconfig.Config{})
	}
	return c.elastic
}

// Join grows the fabric by one host, placed round-robin across the racks,
// and advances simulated time until the join epoch commits and the host is
// active. It returns the new host's index; its processes appear at the tail
// of the process space.
func (c *Cluster) Join() (int, error) {
	e := c.Reconfig()
	tc := c.net.G.Config
	pod := c.joins % tc.Pods
	rack := (c.joins / tc.Pods) % tc.RacksPerPod
	joined := false
	hi, err := e.JoinHost(pod, rack, func(*core.Host, sim.Time) { joined = true })
	if err != nil {
		return -1, err
	}
	c.joins++
	if err := c.runUntil(func() bool { return joined }, 100*Millisecond); err != nil {
		return -1, fmt.Errorf("join host %d: %w", hi, err)
	}
	return hi, nil
}

// Drain gracefully removes a host, advancing simulated time until its send
// window has flushed and the drain epoch has committed.
func (c *Cluster) Drain(host int) error {
	e := c.Reconfig()
	drained := false
	if err := e.DrainHost(host, func() { drained = true }); err != nil {
		return err
	}
	if err := c.runUntil(func() bool { return drained }, 500*Millisecond); err != nil {
		return fmt.Errorf("drain host %d: %w", host, err)
	}
	return nil
}

// runUntil advances the simulation in small steps until done reports true,
// or fails after limit of simulated time.
func (c *Cluster) runUntil(done func() bool, limit Timestamp) error {
	deadline := c.net.Eng.Now() + limit
	for !done() {
		if c.net.Eng.Now() >= deadline {
			return fmt.Errorf("reconfiguration did not complete within %d ns simulated", limit)
		}
		c.net.Eng.RunFor(10 * Microsecond)
	}
	return nil
}

// Close stops every host endpoint; subsequent sends fail with ErrClosed.
// The simulated network itself needs no teardown.
func (c *Cluster) Close() {
	for _, h := range c.core.Hosts {
		h.Stop()
	}
}

// Run advances the simulated data center by d.
func (c *Cluster) Run(d Timestamp) { c.net.Eng.RunFor(d) }

// Now returns the current simulation time.
func (c *Cluster) Now() Timestamp { return c.net.Eng.Now() }

// Network exposes the underlying simulated network (failure injection,
// statistics) for experiments.
func (c *Cluster) Network() *netsim.Network { return c.net }

// Core exposes the deployed lib1pipe runtimes.
func (c *Cluster) Core() *core.Cluster { return c.core }

// Controller returns the failure controller, or nil if not deployed.
func (c *Cluster) Controller() *controller.Controller { return c.ctrl }

// KillHost crash-fails a server; with a controller deployed, reliable
// 1Pipe runs the full Detect/Determine/Broadcast/Discard/Recall/Callback/
// Resume pipeline of §5.2.
func (c *Cluster) KillHost(host int) {
	c.core.Hosts[host].Stop()
	c.net.G.KillNode(c.net.G.Host(host))
}

// procBackend is the per-deployment wiring behind a Process handle: the
// simulator pokes the endpoint directly; the real-time fabrics route
// through their event loop or host lock.
type procBackend interface {
	id() ProcID
	send(msgs []Message, o core.SendOptions) error
	setOnDeliver(fn func(Delivery))
	setOnDeliverBatch(fn func([]Delivery))
	setOnSendFail(fn func(SendFailure))
	setOnProcFail(fn func(ProcID, Timestamp))
	now() Timestamp
}

// simBackend wires a Process to a simulated endpoint. The simulator is
// single-threaded, so field writes need no synchronization.
type simBackend struct{ proc *core.Proc }

func (b simBackend) id() ProcID { return b.proc.ID }
func (b simBackend) send(msgs []Message, o core.SendOptions) error {
	return b.proc.SendOpts(msgs, o)
}
func (b simBackend) setOnDeliver(fn func(Delivery))          { b.proc.OnDeliver = fn }
func (b simBackend) setOnDeliverBatch(fn func([]Delivery))   { b.proc.OnDeliverBatch = fn }
func (b simBackend) setOnSendFail(fn func(SendFailure))      { b.proc.OnSendFail = fn }
func (b simBackend) setOnProcFail(fn func(ProcID, Timestamp)) { b.proc.OnProcFail = fn }
func (b simBackend) now() Timestamp                          { return b.proc.Timestamp() }

// Process is one 1Pipe endpoint, exposing the Table 1 API. The same handle
// type fronts every fabric (simulated or real-time).
type Process struct {
	backend procBackend

	// mu guards the Poll queue: real-time fabrics append deliveries from
	// their own goroutine while the application polls from another.
	mu    sync.Mutex
	queue []Delivery
}

func newProcess(b procBackend) *Process {
	p := &Process{backend: b}
	// Buffer deliveries for Poll until the application registers a
	// callback of its own.
	b.setOnDeliver(func(d Delivery) {
		p.mu.Lock()
		p.queue = append(p.queue, d)
		p.mu.Unlock()
	})
	return p
}

// ID returns the process identifier.
func (p *Process) ID() ProcID { return p.backend.id() }

// Send issues a scattering: a group of messages to different destinations
// occupying one position in the total order. The zero-option call is a
// best-effort send with the fabric's default frame coalescing; refine it
// with Reliable, Batched, or Unbatched. Sends can fail with
// ErrSendBufferFull, ErrBackpressure (doorbell queue full; the error
// carries the earliest drain time), or ErrClosed.
func (p *Process) Send(msgs []Message, opts ...SendOption) error {
	var o core.SendOptions
	for _, opt := range opts {
		opt(&o)
	}
	return p.backend.send(msgs, o)
}

// UnreliableSend issues a best-effort scattering
// (onepipe_unreliable_send).
//
// Deprecated: use Send.
func (p *Process) UnreliableSend(msgs []Message) error { return p.Send(msgs) }

// ReliableSend issues a reliable scattering (onepipe_reliable_send).
//
// Deprecated: use Send with the Reliable option.
func (p *Process) ReliableSend(msgs []Message) error { return p.Send(msgs, Reliable()) }

// OnDeliver registers the delivery callback; messages arrive in
// (timestamp, sender) total order (the push-style equivalent of
// onepipe_unreliable_recv / onepipe_reliable_recv). Registering a callback
// supersedes the Poll queue. On real-time fabrics the callback runs on the
// fabric's internal goroutine; hand heavy work off.
func (p *Process) OnDeliver(fn func(Delivery)) { p.backend.setOnDeliver(fn) }

// OnDeliverBatch registers the batched delivery fast path: contiguous
// below-barrier runs destined for this process arrive as one slice, in the
// same total order OnDeliver would present them. It takes precedence over
// OnDeliver. The slice is reused by the runtime after the callback
// returns; copy deliveries out to retain them.
func (p *Process) OnDeliverBatch(fn func([]Delivery)) { p.backend.setOnDeliverBatch(fn) }

// Poll returns the next delivery in total order, pull-style — the direct
// analogue of Table 1's recv calls. Deliveries accumulate in an internal
// queue while neither OnDeliver nor Poll has consumed them.
func (p *Process) Poll() (Delivery, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.queue) == 0 {
		return Delivery{}, false
	}
	d := p.queue[0]
	p.queue = p.queue[1:]
	return d, true
}

// Pending reports how many deliveries are queued for Poll.
func (p *Process) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// OnSendFail registers the send-failure callback
// (onepipe_send_fail_callback).
func (p *Process) OnSendFail(fn func(SendFailure)) { p.backend.setOnSendFail(fn) }

// OnProcFail registers the process-failure callback
// (onepipe_proc_fail_callback).
func (p *Process) OnProcFail(fn func(proc ProcID, ts Timestamp)) { p.backend.setOnProcFail(fn) }

// Timestamp returns the host's current synchronized timestamp
// (onepipe_get_timestamp).
func (p *Process) Timestamp() Timestamp { return p.backend.now() }
