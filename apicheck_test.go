package onepipe_test

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// apiBaselinePath is the committed exported-API surface of the root
// package. CI runs TestAPIBaseline to fail pull requests that change or
// remove anything in it; regenerate deliberately with
//
//	ONEPIPE_API_BASELINE_WRITE=1 go test -run TestAPIBaseline .
const apiBaselinePath = "api/onepipe.baseline"

// apiSurface extracts one normalized line per exported declaration of the
// package in dir: functions, methods on exported types, exported struct
// fields, interface methods, consts and vars. Only the stdlib go/ast
// toolchain is used, so the check runs offline.
func apiSurface(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	pkg := pkgs["onepipe"]
	if pkg == nil {
		t.Fatalf("package onepipe not found in %s", dir)
	}

	render := func(n ast.Node) string {
		var b bytes.Buffer
		if err := printer.Fprint(&b, fset, n); err != nil {
			t.Fatalf("print: %v", err)
		}
		return strings.Join(strings.Fields(b.String()), " ")
	}
	recvType := func(fd *ast.FuncDecl) (string, bool) {
		if fd.Recv == nil || len(fd.Recv.List) == 0 {
			return "", false
		}
		typ := fd.Recv.List[0].Type
		star := ""
		if p, ok := typ.(*ast.StarExpr); ok {
			star, typ = "*", p.X
		}
		if g, ok := typ.(*ast.IndexExpr); ok { // generic receiver
			typ = g.X
		}
		id, ok := typ.(*ast.Ident)
		if !ok {
			return "", false
		}
		return star + id.Name, ast.IsExported(id.Name)
	}

	var lines []string
	add := func(format string, args ...any) { lines = append(lines, fmt.Sprintf(format, args...)) }
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil {
					rt, exported := recvType(d)
					if !exported {
						continue
					}
					add("method (%s) %s%s", rt, d.Name.Name, strings.TrimPrefix(render(d.Type), "func"))
				} else {
					add("func %s%s", d.Name.Name, strings.TrimPrefix(render(d.Type), "func"))
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						switch typ := s.Type.(type) {
						case *ast.StructType:
							add("type %s struct", s.Name.Name)
							for _, fld := range typ.Fields.List {
								for _, nm := range fld.Names {
									if nm.IsExported() {
										add("field %s.%s %s", s.Name.Name, nm.Name, render(fld.Type))
									}
								}
								if len(fld.Names) == 0 { // embedded
									add("field %s embeds %s", s.Name.Name, render(fld.Type))
								}
							}
						case *ast.InterfaceType:
							add("type %s interface", s.Name.Name)
							for _, m := range typ.Methods.List {
								for _, nm := range m.Names {
									if nm.IsExported() {
										add("ifacemethod %s.%s%s", s.Name.Name, nm.Name,
											strings.TrimPrefix(render(m.Type), "func"))
									}
								}
								if len(m.Names) == 0 {
									add("ifacemethod %s embeds %s", s.Name.Name, render(m.Type))
								}
							}
						default:
							kind := "= " + render(s.Type)
							if s.Assign == token.NoPos {
								kind = render(s.Type)
							}
							add("type %s %s", s.Name.Name, kind)
						}
					case *ast.ValueSpec:
						kw := "var"
						if d.Tok == token.CONST {
							kw = "const"
						}
						for _, nm := range s.Names {
							if nm.IsExported() {
								if s.Type != nil {
									add("%s %s %s", kw, nm.Name, render(s.Type))
								} else {
									add("%s %s", kw, nm.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return lines
}

// TestAPIBaseline diffs the root package's exported API surface against the
// committed baseline. Removing or changing a declaration is an incompatible
// API change and fails; purely additive changes are reported and require a
// deliberate baseline regeneration.
func TestAPIBaseline(t *testing.T) {
	got := apiSurface(t, ".")
	body := strings.Join(got, "\n") + "\n"

	if os.Getenv("ONEPIPE_API_BASELINE_WRITE") != "" {
		if err := os.MkdirAll(filepath.Dir(apiBaselinePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apiBaselinePath, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d declarations)", apiBaselinePath, len(got))
		return
	}

	raw, err := os.ReadFile(apiBaselinePath)
	if err != nil {
		t.Fatalf("missing %s — generate it with ONEPIPE_API_BASELINE_WRITE=1 go test -run TestAPIBaseline .", apiBaselinePath)
	}
	want := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")

	have := make(map[string]bool, len(got))
	for _, l := range got {
		have[l] = true
	}
	baseline := make(map[string]bool, len(want))
	var removed []string
	for _, l := range want {
		baseline[l] = true
		if !have[l] {
			removed = append(removed, l)
		}
	}
	var added []string
	for _, l := range got {
		if !baseline[l] {
			added = append(added, l)
		}
	}
	if len(removed) > 0 {
		t.Errorf("incompatible API change: %d baseline declaration(s) removed or altered:\n  %s",
			len(removed), strings.Join(removed, "\n  "))
	}
	if len(added) > 0 {
		msg := fmt.Sprintf("new exported declarations not in %s:\n  %s\nregenerate with ONEPIPE_API_BASELINE_WRITE=1 go test -run TestAPIBaseline .",
			apiBaselinePath, strings.Join(added, "\n  "))
		if len(removed) > 0 {
			t.Error(msg)
		} else {
			t.Error("compatible but unrecorded API additions — " + msg)
		}
	}
}
